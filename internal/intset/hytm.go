package intset

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/cachesim"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// HyTMResult reports a hybrid-TM benchmark run.
type HyTMResult struct {
	Config     Config
	Cycles     uint64
	Seconds    float64
	Ops        uint64
	Throughput float64
	HTM        htm.Stats
	Alloc      alloc.Stats
}

// RunHyTM executes the hash-set workload under the best-effort HTM with
// lock-elision fallback instead of the STM — the paper's future-work
// configuration. Nodes are allocated *outside* the hardware
// transactions (allocator calls abort them), in the standard HTM
// programming pattern; the allocator's block placement still decides
// which nodes share cache lines, and under HTM line sharing *is*
// conflict sharing.
//
// Only the HashSet kind is supported (short transactions that fit
// hardware capacity).
func RunHyTM(cfg Config) (HyTMResult, error) {
	cfg.fill()
	if cfg.Kind != HashSet {
		return HyTMResult{}, fmt.Errorf("intset: RunHyTM supports only the hashset workload, got %q", cfg.Kind)
	}
	space := mem.NewSpace()
	allocator, err := alloc.New(cfg.Allocator, space, cfg.Threads)
	if err != nil {
		return HyTMResult{}, err
	}
	cache := cachesim.New(cachesim.DefaultCores)
	engine := vtime.NewEngine(space, cfg.Threads, vtime.Config{Cache: cache, Obs: cfg.Obs})
	alloc.Observe(allocator, cfg.Obs)
	cfg.Obs.BeginPhase(fmt.Sprintf("hytm/%s/%s/t%d", cfg.Kind, cfg.Allocator, cfg.Threads))
	h := htm.New(space)

	nb := cfg.HashBuckets
	var buckets mem.Addr
	rng := sim.NewRand(cfg.Seed)

	hash := func(key int64) uint64 {
		x := uint64(key)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		return x & (nb - 1)
	}
	bucket := func(key int64) mem.Addr { return buckets + mem.Addr(hash(key)*8) }

	// contains/insert/remove over {value, next} nodes, HTM flavour.
	contains := func(c *htm.Ctx, key int64) bool {
		cur := mem.Addr(c.Load(bucket(key)))
		for cur != 0 {
			if int64(c.Load(cur)) == key {
				return true
			}
			cur = mem.Addr(c.Load(cur + 8))
		}
		return false
	}
	// insert links a pre-allocated node; reports false on duplicate.
	insert := func(c *htm.Ctx, key int64, node mem.Addr) bool {
		b := bucket(key)
		head := mem.Addr(c.Load(b))
		for cur := head; cur != 0; cur = mem.Addr(c.Load(cur + 8)) {
			if int64(c.Load(cur)) == key {
				return false
			}
		}
		c.Store(node, uint64(key))
		c.Store(node+8, uint64(head))
		c.Store(b, uint64(node))
		return true
	}
	// remove unlinks and returns the node address (0 if absent); the
	// caller frees it after commit (privatization).
	remove := func(c *htm.Ctx, key int64) mem.Addr {
		b := bucket(key)
		prev := mem.Addr(0)
		cur := mem.Addr(c.Load(b))
		for cur != 0 {
			next := mem.Addr(c.Load(cur + 8))
			if int64(c.Load(cur)) == key {
				if prev == 0 {
					c.Store(b, uint64(next))
				} else {
					c.Store(prev+8, uint64(next))
				}
				return cur
			}
			prev, cur = cur, next
		}
		return 0
	}

	// Init: thread 0 builds the bucket array and initial population.
	engine.Run(func(th *vtime.Thread) {
		if th.ID() != 0 {
			return
		}
		buckets = allocator.Malloc(th, nb*8)
		for i := uint64(0); i < nb; i++ {
			th.Store(buckets+mem.Addr(i*8), 0)
		}
		for inserted := 0; inserted < cfg.InitialSize; {
			k := int64(rng.Intn(cfg.KeyRange))
			node := allocator.Malloc(th, 16)
			ok := false
			h.Atomic(th, func(c *htm.Ctx) { ok = insert(c, k, node) })
			if ok {
				inserted++
			} else {
				allocator.Free(th, node)
			}
		}
	})

	engine.ResetClocks()
	engine.Run(func(th *vtime.Thread) {
		r := sim.NewRand(cfg.Seed*1000003 + uint64(th.ID()) + 1)
		lastInserted := int64(-1)
		for i := 0; i < cfg.OpsPerThread; i++ {
			k := int64(r.Intn(cfg.KeyRange))
			update := r.Intn(100) < cfg.UpdatePct
			switch {
			case !update:
				h.Atomic(th, func(c *htm.Ctx) { contains(c, k) })
			case lastInserted < 0:
				node := allocator.Malloc(th, 16)
				ok := false
				h.Atomic(th, func(c *htm.Ctx) { ok = insert(c, k, node) })
				if !ok {
					allocator.Free(th, node)
				}
				lastInserted = k
			default:
				k := lastInserted
				var victim mem.Addr
				h.Atomic(th, func(c *htm.Ctx) { victim = remove(c, k) })
				if victim != 0 {
					allocator.Free(th, victim)
				}
				lastInserted = -1
			}
		}
	})

	cycles := engine.MaxClock()
	ops := uint64(cfg.Threads) * uint64(cfg.OpsPerThread)
	return HyTMResult{
		Config:     cfg,
		Cycles:     cycles,
		Seconds:    vtime.Seconds(cycles),
		Ops:        ops,
		Throughput: float64(ops) / vtime.Seconds(cycles),
		HTM:        h.Stats(),
		Alloc:      allocator.Stats(),
	}, nil
}
