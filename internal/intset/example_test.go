package intset_test

import (
	"fmt"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"

	"repro/internal/intset"
)

// One §5 benchmark run: the sorted linked list under the
// write-dominated workload. Results are deterministic for a fixed
// configuration, so the derived comparison below is stable.
func ExampleRun() {
	glibc, err := intset.Run(intset.Config{
		Kind: intset.LinkedList, Allocator: "glibc", Threads: 2,
		InitialSize: 256, KeyRange: 512, UpdatePct: 60, OpsPerThread: 100,
	})
	if err != nil {
		panic(err)
	}
	hoard, err := intset.Run(intset.Config{
		Kind: intset.LinkedList, Allocator: "hoard", Threads: 2,
		InitialSize: 256, KeyRange: 512, UpdatePct: 60, OpsPerThread: 100,
	})
	if err != nil {
		panic(err)
	}
	// The paper's Table 4 trade-off: Glibc aborts less (32-byte chunks
	// keep each node in its own ORT stripe) but misses more.
	fmt.Println("glibc aborts fewer:", glibc.Tx.Aborts < hoard.Tx.Aborts)
	fmt.Println("glibc misses more:", glibc.L1Miss > hoard.L1Miss)
	// Output:
	// glibc aborts fewer: true
	// glibc misses more: true
}
