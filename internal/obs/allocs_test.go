package obs_test

import (
	"testing"

	"repro/internal/intset"
	"repro/internal/obs"
)

// TestEmitAllocBudget pins the steady-state host allocations of the hot
// emit paths at zero: once a label has appeared (its instrument name
// interned on first use) and the per-thread event ring exists, emitting
// commits, aborts, allocator traffic, transfers and faults must not
// allocate. These emitters run inside every priced simulator step, so
// one alloc here is millions per sweep.
func TestEmitAllocBudget(t *testing.T) {
	r := obs.New(obs.Config{RingSize: 64})

	warm := func() {
		r.TxCommit(0, 10, 20, 3, 2)
		r.TxAbort(0, 10, 20, "locked-by-other", 7, true, 1, 2)
		r.Alloc("tbb", 0, 10, 30, 48, 4096)
		r.Free("tbb", 0, 30, 40, 4096)
		r.LockWait(0, 10, 15)
		r.Transfer("stripe", 0, 20, 1)
		r.Fault("oom", 0, 25, 4096)
		r.Quantum(0, 0, 100)
	}
	for i := 0; i < 8; i++ {
		warm()
	}
	if avg := testing.AllocsPerRun(100, warm); avg > 0 {
		t.Errorf("steady-state emit path allocates %.2f objects per event batch, want 0", avg)
	}
}

// TestEmitNilAllocBudget pins the disabled-recorder fast path: with a
// nil recorder every emitter must reduce to a nil check, no allocation.
func TestEmitNilAllocBudget(t *testing.T) {
	var r *obs.Recorder
	if avg := testing.AllocsPerRun(100, func() {
		r.TxCommit(0, 10, 20, 3, 2)
		r.TxAbort(0, 10, 20, "locked-by-other", 7, false, 0, 0)
		r.Alloc("tbb", 0, 10, 30, 48, 4096)
	}); avg > 0 {
		t.Errorf("nil-recorder emit path allocates %.2f objects, want 0", avg)
	}
}

// TestWorkloadAllocBudget is the PR 8 acceptance gate in test form: the
// flagship benchmark workload (BenchmarkWorkloadObsDisabled's config)
// must stay at or under 1,000 host allocations per run — down from the
// 9,271 the PR started at. testing.AllocsPerRun warms once, so slice
// growth inside the first run is excluded, matching the benchmark's
// steady state.
func TestWorkloadAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run is ~10ms each; skip under -short")
	}
	cfg := benchCfg(nil)
	avg := testing.AllocsPerRun(3, func() {
		if _, err := intset.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 1000
	if avg > budget {
		t.Errorf("flagship workload allocates %.0f objects/run, budget %d", avg, budget)
	}
	t.Logf("flagship workload: %.0f host allocs/run (budget %d)", avg, budget)
}
