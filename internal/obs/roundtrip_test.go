package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// fullRecord populates every exported field of RunRecord and its nested
// types with a non-zero value. TestRunRecordRoundTripFull feeds it
// through the encoder/decoder pair; together with the reflection sweep
// below, a field added to the schema without round-trip coverage fails
// this test until the fixture (and, for new semantics, the decoder) is
// updated — the dynamic half of the recordhygiene analyzer's contract.
func fullRecord() *RunRecord {
	return &RunRecord{
		Schema:        RunRecordSchema,
		SchemaVersion: 2,
		Experiment:    "fig1",
		Title:         "every field set",
		Status:        StatusDegraded,
		Failure:       "watchdog: virtual deadline 1000 exceeded",
		Config: RunConfig{
			Full:  true,
			Reps:  5,
			Seed:  0x5eed,
			Extra: map[string]string{"alloc": "tcmalloc", "threads": "8"},
		},
		Sweep: &SweepInfo{
			CellSet:  "deadbeefcafe",
			Cells:    12,
			Executed: 7,
			Cached:   5,
			Jobs:     8,
		},
		Tables: []Table{{
			Title:   "Throughput",
			Columns: []string{"threads", "tx/s"},
			Rows:    [][]string{{"1", "1000"}, {"8", "5200"}},
		}},
		Series: []Series{{
			Label: "glibc",
			X:     []float64{1, 2, 4, 8},
			Y:     []float64{1.0, 1.9, 3.6, 6.1},
			Err:   []float64{0.1, 0.1, 0.2, 0.4},
		}},
		Notes: []string{"quick scale", "sanitizer on"},
		Metrics: &Snapshot{
			Counters: map[string]uint64{"stm_commits_total": 42},
			Gauges:   map[string]float64{"heap_bytes": 4096},
			Histograms: map[string]HistogramSnapshot{
				"tx_cycles": {
					Count:   3,
					Sum:     900,
					Buckets: []BucketCount{{LE: "256", Count: 1}, {LE: "+Inf", Count: 2}},
				},
			},
		},
		Stripes: []StripeJSON{{
			Entry:           17,
			Conflicts:       9,
			FalseAborts:     4,
			Placements:      []PlacementJSON{{Key: 0x1234, Count: 6}},
			OtherPlacements: 2,
			Aliased:         true,
		}},
		Trace: &TraceInfo{
			Events:  128,
			Dropped: 3,
			ByKind:  map[string]int{"tx_commit": 100, "malloc": 28},
			Phases:  []string{"init", "measure"},
		},
		Profile: &ProfileInfo{
			Schema:      "tmprof/profile/v1",
			Samples:     96,
			Frames:      24,
			Threads:     8,
			TotalCycles: 1 << 30,
		},
		Heap: &HeapInfo{
			Schema:     "tmheap/series/v1",
			Series:     4,
			Samples:    64,
			Cadence:    1 << 20,
			Allocators: []string{"glibc", "hoard"},
		},
		Recovery: &RecoveryInfo{
			Verdict:     StatusDegraded,
			Crashed:     true,
			CrashCycle:  84213,
			CrashPhase:  "apply",
			Flushes:     512,
			Fences:      256,
			LogAppends:  1024,
			MetaRecs:    96,
			TornLogs:    2,
			Replayed:    5,
			LiveBlocks:  40,
			FreeBlocks:  12,
			TornMeta:    18,
			MetaWords:   150,
			LostWrites:  1,
			Resurrected: 1,
			ChainBreaks: 1,
			ShadowBad:   1,
		},
		Pool: &PoolInfo{
			Discipline: "batch",
			Hits:       320,
			Misses:     64,
			Returns:    300,
			Refills:    8,
			Slabs:      6,
			SlabBytes:  12288,
			Held:       84,
		},
		Race: &RaceInfo{
			Checked:          true,
			Findings:         6,
			Publication:      1,
			Privatization:    1,
			Mixed:            1,
			Metadata:         1,
			QuarantineBypass: 1,
			DurableOrdering:  1,
			Words:            4096,
			Blocks:           512,
			Events:           1 << 16,
			First:            "metadata: 0x10000040: raw free of block still visible to t1",
		},
		Conflict: &ConflictInfo{
			Observed:        true,
			Events:          24,
			TrueSharing:     6,
			FalseSharing:    9,
			StripeAlias:     3,
			Metadata:        4,
			Other:           2,
			WastedCycles:    90000,
			WastedTrue:      20000,
			WastedFalse:     40000,
			WastedAlias:     10000,
			WastedMeta:      15000,
			WastedOther:     5000,
			SameLine:        7,
			CrossBlock:      5,
			Edges:           4,
			LongestChain:    3,
			TopSite:         "insert@glibc",
			TopSiteWasted:   40000,
			TopOffender:     "0x10000140",
			TopOffenderHits: 5,
			First:           "false-sharing: t1 insert #2 killed by t0 remove at stripe 0x80000a, 0x10000140 vs 0x10000148, wasted 1200",
		},
	}
}

// requireNoZeroFields walks v and fails the test for any exported field
// left at its zero value: that is how a newly added schema field shows
// up here before the fixture covers it.
func requireNoZeroFields(t *testing.T, path string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			t.Errorf("%s: nil — fullRecord must populate every field", path)
			return
		}
		requireNoZeroFields(t, path, v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				continue
			}
			requireNoZeroFields(t, path+"."+f.Name, v.Field(i))
		}
	case reflect.Map:
		if v.Len() == 0 {
			t.Errorf("%s: empty — fullRecord must populate every field", path)
			return
		}
		for _, k := range v.MapKeys() {
			requireNoZeroFields(t, path+"["+k.String()+"]", v.MapIndex(k))
		}
	case reflect.Slice:
		if v.Len() == 0 {
			t.Errorf("%s: empty — fullRecord must populate every field", path)
			return
		}
		// One element suffices; the fixture is hand-built.
		requireNoZeroFields(t, path+"[0]", v.Index(0))
	default:
		if v.IsZero() {
			t.Errorf("%s: zero value — fullRecord must populate every field", path)
		}
	}
}

func TestRunRecordRoundTripFull(t *testing.T) {
	rec := fullRecord()
	requireNoZeroFields(t, "RunRecord", reflect.ValueOf(rec))

	var buf bytes.Buffer
	if err := WriteRunRecords(&buf, []*RunRecord{rec}); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeRunRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("decoded %d records, want 1", len(recs))
	}
	if !reflect.DeepEqual(recs[0], rec) {
		t.Errorf("round trip changed the record:\n got %+v\nwant %+v", recs[0], rec)
	}
}
