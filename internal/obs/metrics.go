package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Registry holds counters, gauges and log-bucketed histograms keyed by
// their full name including any Prometheus-style labels, e.g.
// `alloc_ops_total{alloc="glibc",op="malloc"}`. Instruments are created
// on first use and live for the registry's lifetime, so callers on hot
// paths can resolve an instrument once and keep the pointer.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a settable float64.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// histBuckets is the number of log2 buckets: bucket i counts
// observations v with v <= 2^i; larger values land in +Inf.
const histBuckets = 33

// Histogram is a log2-bucketed histogram of uint64 observations.
type Histogram struct {
	buckets [histBuckets + 1]uint64 // [histBuckets] = +Inf
	count   uint64
	sum     uint64
}

// Observe records v.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	i := bucketOf(v)
	h.buckets[i]++
}

// bucketOf returns the index of the smallest bucket bound >= v.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(v - 1) // ceil(log2(v))
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// bucketBound returns the upper bound of bucket i (2^i).
func bucketBound(i int) uint64 { return uint64(1) << uint(i) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns sum/count (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Counter returns (creating if needed) the named counter.
func (g *Registry) Counter(name string) *Counter {
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (g *Registry) Gauge(name string) *Gauge {
	ga, ok := g.gauges[name]
	if !ok {
		ga = &Gauge{}
		g.gauges[name] = ga
	}
	return ga
}

// Histogram returns (creating if needed) the named histogram.
func (g *Registry) Histogram(name string) *Histogram {
	h, ok := g.hists[name]
	if !ok {
		h = &Histogram{}
		g.hists[name] = h
	}
	return h
}

// family splits a full metric name into its family (the part before any
// label braces) and the label body (without braces, empty if none).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// withLabel renders family{labels,extra} with correct comma handling.
func withLabel(fam, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return fam
	case labels == "":
		return fam + "{" + extra + "}"
	case extra == "":
		return fam + "{" + labels + "}"
	}
	return fam + "{" + labels + "," + extra + "}"
}

// sortedKeys returns the map keys ordered by (family, full name) so
// exposition groups label variants of one family together.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		fi, _ := family(keys[i])
		fj, _ := family(keys[j])
		if fi != fj {
			return fi < fj
		}
		return keys[i] < keys[j]
	})
	return keys
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format, deterministically ordered. Counters first, then
// gauges, then histograms (with cumulative le buckets), each family
// preceded by a # TYPE line.
func (g *Registry) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	lastFam := ""
	for _, k := range sortedKeys(g.counters) {
		fam, _ := family(k)
		if fam != lastFam {
			p("# TYPE %s counter\n", fam)
			lastFam = fam
		}
		p("%s %d\n", k, g.counters[k].v)
	}
	lastFam = ""
	for _, k := range sortedKeys(g.gauges) {
		fam, _ := family(k)
		if fam != lastFam {
			p("# TYPE %s gauge\n", fam)
			lastFam = fam
		}
		p("%s %s\n", k, formatFloat(g.gauges[k].v))
	}
	lastFam = ""
	for _, k := range sortedKeys(g.hists) {
		fam, labels := family(k)
		if fam != lastFam {
			p("# TYPE %s histogram\n", fam)
			lastFam = fam
		}
		h := g.hists[k]
		cum := uint64(0)
		for i := 0; i <= histBuckets; i++ {
			if h.buckets[i] == 0 && i < histBuckets {
				continue // keep exposition compact: only landed buckets + +Inf
			}
			cum += h.buckets[i]
			le := "+Inf"
			if i < histBuckets {
				le = fmt.Sprintf("%d", bucketBound(i))
			}
			p("%s %d\n", withLabel(fam+"_bucket", labels, `le="`+le+`"`), cum)
		}
		p("%s %d\n", withLabel(fam+"_sum", labels, ""), h.sum)
		p("%s %d\n", withLabel(fam+"_count", labels, ""), h.count)
	}
	return err
}

// formatFloat renders a float deterministically (no exponent jitter:
// %g is already deterministic in Go; this just pins the verb).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	LE    string `json:"le"` // upper bound ("+Inf" for the overflow bucket)
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time JSON-serializable copy of a registry.
// Maps marshal with sorted keys, so output is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (g *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(g.counters)),
		Gauges:     make(map[string]float64, len(g.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(g.hists)),
	}
	for k, c := range g.counters {
		s.Counters[k] = c.v
	}
	for k, ga := range g.gauges {
		s.Gauges[k] = ga.v
	}
	for k, h := range g.hists {
		hs := HistogramSnapshot{Count: h.count, Sum: h.sum}
		for i := 0; i <= histBuckets; i++ {
			if h.buckets[i] == 0 {
				continue
			}
			le := "+Inf"
			if i < histBuckets {
				le = fmt.Sprintf("%d", bucketBound(i))
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LE: le, Count: h.buckets[i]})
		}
		s.Histograms[k] = hs
	}
	return s
}
