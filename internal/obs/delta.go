package obs

import "sort"

// Delta is the detachable observability state of one Recorder — the
// events, phases, metrics and heatmap one sweep cell collected while
// running with its own private Recorder. The parallel sweep scheduler
// gives every cell its own Recorder (the Recorder itself is not
// host-thread-safe), carries the finished cells' Deltas back to the
// coordinating goroutine, and the harness folds them into the main
// Recorder with Apply in deterministic cell order — so a -jobs 8 run
// merges to exactly the bytes a -jobs 1 run produces.
type Delta struct {
	phases []string
	rings  []*ring
	reg    *Registry
	heat   *Heatmap
}

// Delta returns the recorder's collected state as a mergeable unit.
// The recorder must not be used for further recording afterwards (the
// Delta aliases its internals); per-cell recorders are discarded once
// their cell completes, so nothing does.
func (r *Recorder) Delta() *Delta {
	if r == nil {
		return nil
	}
	return &Delta{phases: r.phases, rings: r.rings, reg: r.reg, heat: r.heat}
}

// Events returns the delta's retained event count (for provenance).
func (d *Delta) Events() int {
	if d == nil {
		return 0
	}
	n := 0
	for _, rg := range d.rings {
		if rg != nil {
			n += len(rg.events())
		}
	}
	return n
}

// Apply folds a cell's Delta into the recorder: phases are appended
// (event epochs shifted accordingly, so each cell keeps its own trace
// process), per-thread events are re-pushed in their original order,
// counters and histogram buckets add, gauges keep the maximum (every
// gauge in this codebase is a watermark), and heatmap cells accumulate.
// Applying the same deltas in the same order always yields the same
// recorder state — merge determinism is the caller's ordering duty.
func (r *Recorder) Apply(d *Delta) {
	if r == nil || d == nil {
		return
	}
	off := int32(len(r.phases))
	r.phases = append(r.phases, d.phases...)
	for tid, rg := range d.rings {
		if rg == nil {
			continue
		}
		r.extraDropped += rg.dropped()
		for _, ev := range rg.events() {
			ev.Epoch += off
			r.pushRaw(tid, ev)
		}
	}
	r.reg.merge(d.reg)
	r.heat.merge(d.heat)
}

// pushRaw appends an event preserving its TID/Epoch/TS (unlike push,
// which stamps the recorder's current epoch).
func (r *Recorder) pushRaw(tid int, ev Event) {
	for tid >= len(r.rings) {
		r.rings = append(r.rings, &ring{buf: make([]Event, r.ringSize)})
	}
	ev.TID = int32(tid)
	r.rings[tid].push(ev)
}

// merge folds src into the registry: counters and histograms add,
// gauges take the maximum (watermark semantics).
func (g *Registry) merge(src *Registry) {
	if src == nil {
		return
	}
	for k, c := range src.counters {
		g.Counter(k).Add(c.v)
	}
	for k, sg := range src.gauges {
		dst := g.Gauge(k)
		if sg.v > dst.v {
			dst.v = sg.v
		}
	}
	for k, sh := range src.hists {
		dst := g.Histogram(k)
		dst.count += sh.count
		dst.sum += sh.sum
		for i := range sh.buckets {
			dst.buckets[i] += sh.buckets[i]
		}
	}
}

// merge folds src into the heatmap. Placement keys are visited in
// sorted order so the maxPlacements cap cuts off deterministically.
func (h *Heatmap) merge(src *Heatmap) {
	if src == nil {
		return
	}
	entries := make([]uint64, 0, len(src.cells))
	for e := range src.cells {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	for _, e := range entries {
		sc := src.cells[e]
		c := h.cells[e]
		if c == nil {
			c = &StripeCell{Entry: e, placements: make(map[uint64]uint64, len(sc.placements))}
			h.cells[e] = c
		}
		c.Conflicts += sc.Conflicts
		c.FalseAborts += sc.FalseAborts
		c.OtherPlacements += sc.OtherPlacements
		keys := make([]uint64, 0, len(sc.placements))
		for k := range sc.placements {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			n := sc.placements[k]
			if _, ok := c.placements[k]; !ok && len(c.placements) >= maxPlacements {
				c.OtherPlacements += n
				continue
			}
			c.placements[k] += n
		}
	}
}
