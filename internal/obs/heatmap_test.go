package obs

import "testing"

// TestHeatmapPlacementCap exercises the placement-key bookkeeping at
// the maxPlacements bound directly: the first maxPlacements distinct
// keys get named counters, every further distinct key folds into
// OtherPlacements, and a key already named keeps counting normally
// even once the cap is reached.
func TestHeatmapPlacementCap(t *testing.T) {
	h := NewHeatmap()
	const entry = 7
	// maxPlacements distinct owner keys (reqKey == ownerKey so each
	// Record notes exactly one key).
	for k := uint64(0); k < maxPlacements; k++ {
		h.Record(entry, false, 100+k, 100+k)
	}
	cells := h.Top(0)
	if len(cells) != 1 {
		t.Fatalf("Top returned %d cells, want 1", len(cells))
	}
	if got := len(cells[0].Placements); got != maxPlacements {
		t.Fatalf("%d named placements, want %d", got, maxPlacements)
	}
	if cells[0].OtherPlacements != 0 {
		t.Fatalf("OtherPlacements = %d before the cap was exceeded, want 0", cells[0].OtherPlacements)
	}
	if cells[0].Aliased != true {
		t.Error("cell with multiple distinct placements not marked aliased")
	}

	// The cap is full: two new distinct keys fold into OtherPlacements…
	h.Record(entry, true, 900, 901)
	// …while a key named before the cap still counts by name.
	h.Record(entry, true, 100, 100)

	cells = h.Top(0)
	c := cells[0]
	if got := len(c.Placements); got != maxPlacements {
		t.Errorf("%d named placements after overflow, want still %d", got, maxPlacements)
	}
	if c.OtherPlacements != 2 {
		t.Errorf("OtherPlacements = %d, want 2 (keys 900 and 901 past the cap)", c.OtherPlacements)
	}
	for _, p := range c.Placements {
		if p.Key == 100 && p.Count != 2 {
			t.Errorf("named key 100 counted %d, want 2 (once at fill + once past the cap)", p.Count)
		}
		if p.Key == 900 || p.Key == 901 {
			t.Errorf("key %d named despite arriving past the cap", p.Key)
		}
	}
	if c.Conflicts != maxPlacements+2 {
		t.Errorf("Conflicts = %d, want %d", c.Conflicts, maxPlacements+2)
	}
	if c.FalseAborts != 2 {
		t.Errorf("FalseAborts = %d, want 2", c.FalseAborts)
	}
}

// TestHeatmapTotalFalseAborts pins TotalFalseAborts (and Len) on the
// empty and single-cell maps.
func TestHeatmapTotalFalseAborts(t *testing.T) {
	h := NewHeatmap()
	if h.Len() != 0 {
		t.Errorf("empty heatmap Len = %d, want 0", h.Len())
	}
	if got := h.TotalFalseAborts(); got != 0 {
		t.Errorf("empty heatmap TotalFalseAborts = %d, want 0", got)
	}

	// One cell: a true conflict then two false aborts.
	h.Record(3, false, 10, 10)
	h.Record(3, true, 10, 11)
	h.Record(3, true, 10, 12)
	if h.Len() != 1 {
		t.Errorf("Len = %d, want 1", h.Len())
	}
	if got := h.TotalFalseAborts(); got != 2 {
		t.Errorf("single-cell TotalFalseAborts = %d, want 2", got)
	}

	// A second cell's false aborts sum in.
	h.Record(9, true, 20, 21)
	if got := h.TotalFalseAborts(); got != 3 {
		t.Errorf("two-cell TotalFalseAborts = %d, want 3", got)
	}
}
