package obs_test

import (
	"testing"

	_ "repro/internal/alloc/tbb"

	"repro/internal/intset"
	"repro/internal/obs"
)

// benchCfg is the workload the overhead benchmarks run: small enough to
// iterate, contended enough to exercise the instrumented hot paths (tx
// begin/commit/abort, allocator malloc/free, lock waits).
func benchCfg(rec *obs.Recorder) intset.Config {
	return intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    "tbb",
		Threads:      4,
		InitialSize:  96,
		KeyRange:     192,
		UpdatePct:    60,
		OpsPerThread: 40,
		Obs:          rec,
	}
}

// BenchmarkWorkloadObsDisabled is the baseline: the fully instrumented
// hot paths with a nil recorder, where every event site reduces to one
// pointer nil-check. Compare against BenchmarkWorkloadObsEnabled to see
// the cost tracing adds when switched on; compare both against any
// pre-instrumentation baseline to bound the disabled-path regression
// (acceptance: < 5%).
func BenchmarkWorkloadObsDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := intset.Run(benchCfg(nil)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadObsEnabled runs the same workload with a live
// recorder capturing every event.
func BenchmarkWorkloadObsEnabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := intset.Run(benchCfg(obs.New(obs.Config{}))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmitNil measures the per-event cost of a disabled
// instrumentation site: a method call on a nil *Recorder.
func BenchmarkEmitNil(b *testing.B) {
	var r *obs.Recorder
	for i := 0; i < b.N; i++ {
		r.TxCommit(0, uint64(i), uint64(i)+10, 4, 2)
	}
}

// BenchmarkEmitTxCommit measures the per-event cost of an enabled
// tx-commit site (ring push + pre-resolved metric updates).
func BenchmarkEmitTxCommit(b *testing.B) {
	r := obs.New(obs.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.TxCommit(0, uint64(i), uint64(i)+10, 4, 2)
	}
}

// BenchmarkEmitAlloc measures the per-event cost of an enabled
// allocator malloc site (ring push + counter + latency histogram).
func BenchmarkEmitAlloc(b *testing.B) {
	r := obs.New(obs.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Alloc("tbb", 0, uint64(i), uint64(i)+5, 48, uint64(i)*64)
	}
}
