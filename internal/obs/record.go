package obs

import (
	"encoding/json"
	"io"
)

// RunRecordSchema identifies the RunRecord JSON layout version.
const RunRecordSchema = "tmrepro/run-record/v1"

// Table is the serialization form of one result table (mirrors
// harness.Table without importing it, so any tool can reuse it).
type Table struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Series is one plottable line: label plus x/y[/err] points.
type Series struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
	Err   []float64 `json:"err,omitempty"`
}

// RunConfig captures the knobs that produced a run.
type RunConfig struct {
	Full  bool              `json:"full"`
	Reps  int               `json:"reps,omitempty"`
	Seed  uint64            `json:"seed"`
	Extra map[string]string `json:"extra,omitempty"`
}

// TraceInfo summarizes the event stream attached to a run.
type TraceInfo struct {
	Events  int            `json:"events"`
	Dropped uint64         `json:"dropped,omitempty"`
	ByKind  map[string]int `json:"by_kind,omitempty"`
	Phases  []string       `json:"phases,omitempty"`
}

// Run statuses. A record is valid in any of them: the robustness layer
// guarantees an artifact is emitted even when the run degrades or dies.
const (
	StatusOK       = "ok"       // completed and validated
	StatusDegraded = "degraded" // terminated under pressure: watchdog deadline,
	// graceful OOM shutdown, or post-fault validation failure
	StatusFailed = "failed" // a panic was captured; partial results only
)

// RunRecord is the machine-readable artifact of one experiment run —
// what BENCH_<exp>.json files hold. Everything in it derives from
// virtual time and fixed seeds, so records are reproducible
// byte-for-byte.
type RunRecord struct {
	Schema     string       `json:"schema"`
	Experiment string       `json:"experiment"`
	Title      string       `json:"title,omitempty"`
	Status     string       `json:"status,omitempty"`  // "" is StatusOK (pre-robustness records)
	Failure    string       `json:"failure,omitempty"` // watchdog / panic detail for non-ok statuses
	Config     RunConfig    `json:"config"`
	Tables     []Table      `json:"tables,omitempty"`
	Series     []Series     `json:"series,omitempty"`
	Notes      []string     `json:"notes,omitempty"`
	Metrics    *Snapshot    `json:"metrics,omitempty"`
	Stripes    []StripeJSON `json:"stripe_heatmap,omitempty"`
	Trace      *TraceInfo   `json:"trace,omitempty"`
}

// Attach fills the record's observability sections (metrics snapshot,
// stripe heatmap, trace summary) from the recorder. A nil recorder
// leaves the record untouched.
func (rec *RunRecord) Attach(r *Recorder) {
	if r == nil {
		return
	}
	rec.Metrics = r.reg.Snapshot()
	rec.Stripes = r.heat.Top(64)
	info := &TraceInfo{Dropped: r.Dropped(), Phases: r.Phases(), ByKind: map[string]int{}}
	for _, ev := range r.Events() {
		info.Events++
		info.ByKind[ev.Kind.String()]++
	}
	rec.Trace = info
}

// WriteJSON serializes the record with stable formatting.
func (rec *RunRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// WriteRunRecords serializes one record as an object or several as an
// array, matching what a single -json output file should hold.
func WriteRunRecords(w io.Writer, recs []*RunRecord) error {
	if len(recs) == 1 {
		return recs[0].WriteJSON(w)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
