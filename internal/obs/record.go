package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Run-record schema identifiers. V2 added SchemaVersion and the Sweep
// provenance section (cell-set hash, cached-vs-executed counts, host
// pool width); everything in v1 is still present and means the same, so
// v1 files decode losslessly (see DecodeRunRecords).
const (
	RunRecordSchemaV1 = "tmrepro/run-record/v1"
	RunRecordSchema   = "tmrepro/run-record/v2"
)

// Table is the serialization form of one result table (mirrors
// harness.Table without importing it, so any tool can reuse it).
type Table struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Series is one plottable line: label plus x/y[/err] points.
type Series struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
	Err   []float64 `json:"err,omitempty"`
}

// RunConfig captures the knobs that produced a run.
type RunConfig struct {
	Full  bool              `json:"full"`
	Reps  int               `json:"reps,omitempty"`
	Seed  uint64            `json:"seed"`
	Extra map[string]string `json:"extra,omitempty"`
}

// TraceInfo summarizes the event stream attached to a run.
type TraceInfo struct {
	Events  int            `json:"events"`
	Dropped uint64         `json:"dropped,omitempty"`
	ByKind  map[string]int `json:"by_kind,omitempty"`
	Phases  []string       `json:"phases,omitempty"`
}

// Run statuses. A record is valid in any of them: the robustness layer
// guarantees an artifact is emitted even when the run degrades or dies.
const (
	StatusOK       = "ok"       // completed and validated
	StatusDegraded = "degraded" // terminated under pressure: watchdog deadline,
	// graceful OOM shutdown, or post-fault validation failure
	StatusFailed = "failed" // a panic was captured; partial results only
)

// SweepInfo is the scheduler provenance of a record produced through
// the parallel sweep: which cell set the experiment decomposed into
// (a hash over the cells' config hashes — the experiment's identity for
// caching), how many cells ran versus came from the cache, and how wide
// the host worker pool was. Everything except Jobs is deterministic for
// a given cache state; Jobs records how the run was executed, like wall
// clock would, and is excluded from byte-identity comparisons.
type SweepInfo struct {
	CellSet  string `json:"cell_set,omitempty"` // hash over the experiment's cell hashes
	Cells    int    `json:"cells"`
	Executed int    `json:"executed"`
	Cached   int    `json:"cached"`
	Jobs     int    `json:"jobs,omitempty"` // host goroutine pool width used
}

// ProfileInfo summarizes the cycle-attribution profile captured for a
// run (the full profile is its own artifact; the record carries only
// its identity and extent). It lives here rather than in internal/prof
// because prof builds on obs; the prof package fills it in.
type ProfileInfo struct {
	Schema      string `json:"schema"`       // profile artifact schema (tmprof/profile/v1)
	Samples     int    `json:"samples"`      // (thread, region-stack) buckets
	Frames      int    `json:"frames"`       // distinct region frames
	Threads     int    `json:"threads"`      // logical threads attributed
	TotalCycles uint64 `json:"total_cycles"` // sum over all buckets == summed thread clocks
}

// HeapInfo summarizes the allocator-state telemetry series captured for
// a run (the full tmheap/series/v1 artifact is its own file; the record
// carries only its identity and extent). It lives here rather than in
// internal/heapscope because heapscope builds on obs; the heapscope
// package fills it in. Kept flat (scalars and one string list, no
// nested objects) so byte-identity tooling can strip the whole block
// with a line-range filter.
type HeapInfo struct {
	Schema     string   `json:"schema"`     // series artifact schema (tmheap/series/v1)
	Series     int      `json:"series"`     // per-cell series captured
	Samples    int      `json:"samples"`    // snapshots across all series
	Cadence    uint64   `json:"cadence"`    // virtual cycles between snapshots
	Allocators []string `json:"allocators"` // distinct allocators observed, first-seen order
}

// RecoveryInfo is the verdict of the durable-memory layer for a run:
// flush/fence/log traffic when the run completed normally, plus the
// crash point and the recovery invariant sweep when a deterministic
// crash was injected. It lives here rather than in internal/pmem
// because pmem builds on obs; the pmem package fills it in. Kept flat
// (scalars only, no nested objects) so byte-identity tooling can strip
// the whole block with a line-range filter.
type RecoveryInfo struct {
	// Verdict is "ok", "degraded" (metadata repaired with caveats:
	// free-list closure or shadow-map disagreement) or "failed" (a
	// durability invariant broke: lost committed writes or resurrected
	// blocks).
	Verdict string `json:"verdict"`
	// Crashed reports whether a crash clause fired; CrashCycle and
	// CrashPhase locate it (virtual cycle, commit-phase name).
	Crashed    bool   `json:"crashed"`
	CrashCycle uint64 `json:"crash_cycle,omitempty"`
	CrashPhase string `json:"crash_phase,omitempty"`
	// Durable-traffic counters for the whole run (both phases).
	Flushes    uint64 `json:"flushes"`
	Fences     uint64 `json:"fences"`
	LogAppends uint64 `json:"log_appends"`
	MetaRecs   uint64 `json:"meta_recs,omitempty"` // allocator structural journal records
	// Recovery outcome (crash runs only).
	TornLogs   int    `json:"torn_logs,omitempty"`   // populated-but-uncommitted redo logs discarded
	Replayed   int    `json:"replayed,omitempty"`    // committed-but-untruncated redo logs re-applied
	LiveBlocks int    `json:"live_blocks,omitempty"` // journaled blocks live after recovery
	FreeBlocks int    `json:"free_blocks,omitempty"` // blocks relinked into rebuilt free chains
	TornMeta   uint64 `json:"torn_meta,omitempty"`   // allocator metadata words rewritten from journaled truth
	MetaWords  uint64 `json:"meta_words,omitempty"`  // allocator metadata words scanned
	// Invariant-sweep failure counters (zero on a clean recovery).
	LostWrites  int `json:"lost_writes,omitempty"`  // committed stores missing from the recovered heap
	Resurrected int `json:"resurrected,omitempty"`  // freed blocks that came back live
	ChainBreaks int `json:"chain_breaks,omitempty"` // free chains failing the closure walk
	ShadowBad   int `json:"shadow_bad,omitempty"`   // shadow-map states disagreeing post-resync
}

// PoolInfo summarizes the transaction-pooling discipline a run used and
// the pool traffic it generated: how many simulated allocations were
// served from reuse lists versus falling through to the allocator, and
// what the pool retained. It lives here rather than in internal/stm
// because stm builds on obs; the workloads fill it in from
// stm.PoolStats. Kept flat (scalars and one string, no nested objects)
// so byte-identity tooling can strip the whole block with a line-range
// filter.
type PoolInfo struct {
	Discipline string `json:"discipline"`           // none / cache / pool / batch
	Hits       uint64 `json:"hits"`                 // Gets served from a reuse list
	Misses     uint64 `json:"misses"`               // Gets that fell through to the allocator
	Returns    uint64 `json:"returns"`              // Puts the pool kept
	Refills    uint64 `json:"refills,omitempty"`    // bulk refill / slab-carve operations
	Slabs      uint64 `json:"slabs,omitempty"`      // slabs carved (batch discipline)
	SlabBytes  uint64 `json:"slab_bytes,omitempty"` // bytes reserved in slabs
	Held       uint64 `json:"held"`                 // blocks parked in reuse lists at run end
}

// RaceInfo is the verdict of the happens-before race checker for a run:
// how much of the execution it observed (events, tracked words and
// blocks) and what it found, split by violation class (see
// internal/race for the taxonomy). It lives here rather than in
// internal/race because race builds on obs; the race package fills it
// in. Kept flat (scalars and one string, no nested objects) so
// byte-identity tooling can strip the whole block with a line-range
// filter.
type RaceInfo struct {
	Checked  bool `json:"checked"`  // a checker was attached for the run
	Findings int  `json:"findings"` // total violations, all classes
	// Per-class counters (each counts every occurrence, not just the
	// retained exemplars).
	Publication      int `json:"publication,omitempty"`       // raw write vs unordered tx read
	Privatization    int `json:"privatization,omitempty"`     // tx write vs unordered raw access
	Mixed            int `json:"mixed,omitempty"`             // unordered tx/raw write-write
	Metadata         int `json:"metadata,omitempty"`          // tx access to a block the allocator reclaimed
	QuarantineBypass int `json:"quarantine_bypass,omitempty"` // block reissued while still quarantined
	DurableOrdering  int `json:"durable_ordering,omitempty"`  // durable store before its redo-log commit fence
	// Coverage counters.
	Words  uint64 `json:"words"`           // simulated words tracked (live allocator-block extents)
	Blocks uint64 `json:"blocks"`          // allocator blocks tracked over the run
	Events uint64 `json:"events"`          // scheduler/STM/heap events consumed
	First  string `json:"first,omitempty"` // first finding, rendered (empty on a clean run)
}

// ConflictInfo is the verdict of the conflict observatory for a run:
// how many abort events it consumed and how their wasted virtual cycles
// distribute over the four placement classes (see internal/conflict for
// the taxonomy), plus the headline aggregates of the killer/victim
// graph, the allocation-site blame table and the abort-chain detector.
// It lives here rather than in internal/conflict because conflict
// builds on obs; the conflict package fills it in. Kept flat (scalars
// and strings, no nested objects) so byte-identity tooling can strip
// the whole block with a line-range filter.
type ConflictInfo struct {
	Observed bool `json:"observed"` // an observatory was attached for the run
	Events   int  `json:"events"`   // abort events consumed
	// Per-class abort counts (true-sharing: same word; false-sharing:
	// different addresses in one 2^shift-byte stripe; stripe-alias:
	// different stripes folded onto one ORT entry by the modulo;
	// metadata: a conflicting address inside allocator metadata or a
	// reclaimed block; other: aborts with no attributable stripe).
	TrueSharing  int `json:"true_sharing,omitempty"`
	FalseSharing int `json:"false_sharing,omitempty"`
	StripeAlias  int `json:"stripe_alias,omitempty"`
	Metadata     int `json:"metadata,omitempty"`
	Other        int `json:"other,omitempty"`
	// Wasted virtual cycles (begin-to-abort) total and per class.
	WastedCycles uint64 `json:"wasted_cycles"`
	WastedTrue   uint64 `json:"wasted_true,omitempty"`
	WastedFalse  uint64 `json:"wasted_false,omitempty"`
	WastedAlias  uint64 `json:"wasted_alias,omitempty"`
	WastedMeta   uint64 `json:"wasted_meta,omitempty"`
	WastedOther  uint64 `json:"wasted_other,omitempty"`
	// Enrichment counters over the false-sharing class.
	SameLine   int `json:"same_line,omitempty"`   // conflicting pair shares a 64-byte cache line
	CrossBlock int `json:"cross_block,omitempty"` // conflicting pair spans two allocator blocks
	// Killer/victim graph, blame table and cascade aggregates.
	Edges           int    `json:"edges,omitempty"`         // distinct killer-kind -> victim-kind edges
	LongestChain    int    `json:"longest_chain,omitempty"` // longest abort cascade observed
	TopSite         string `json:"top_site,omitempty"`      // allocation site blamed for the most placement-caused wasted cycles
	TopSiteWasted   uint64 `json:"top_site_wasted,omitempty"`
	TopOffender     string `json:"top_offender,omitempty"` // address involved in the most placement-caused aborts
	TopOffenderHits int    `json:"top_offender_hits,omitempty"`
	First           string `json:"first,omitempty"` // first exemplar event, rendered
}

// RunRecord is the machine-readable artifact of one experiment run —
// what BENCH_<exp>.json files hold. Everything in it derives from
// virtual time and fixed seeds, so records are reproducible
// byte-for-byte.
type RunRecord struct {
	Schema        string        `json:"schema"`
	SchemaVersion int           `json:"schema_version,omitempty"` // 0/absent means 1 (v1 files predate it)
	Experiment    string        `json:"experiment"`
	Title         string        `json:"title,omitempty"`
	Status        string        `json:"status,omitempty"`  // "" is StatusOK (pre-robustness records)
	Failure       string        `json:"failure,omitempty"` // watchdog / panic detail for non-ok statuses
	Config        RunConfig     `json:"config"`
	Sweep         *SweepInfo    `json:"sweep,omitempty"` // scheduler provenance (v2)
	Tables        []Table       `json:"tables,omitempty"`
	Series        []Series      `json:"series,omitempty"`
	Notes         []string      `json:"notes,omitempty"`
	Metrics       *Snapshot     `json:"metrics,omitempty"`
	Stripes       []StripeJSON  `json:"stripe_heatmap,omitempty"`
	Trace         *TraceInfo    `json:"trace,omitempty"`
	Profile       *ProfileInfo  `json:"profile,omitempty"`  // cycle-attribution summary (v2, PR 5)
	Heap          *HeapInfo     `json:"heap,omitempty"`     // allocator-state telemetry summary (v2, PR 6)
	Recovery      *RecoveryInfo `json:"recovery,omitempty"` // durable-memory verdict (v2, PR 7)
	Pool          *PoolInfo     `json:"pool,omitempty"`     // tx-pooling discipline and traffic (v2, PR 8)
	Race          *RaceInfo     `json:"race,omitempty"`     // happens-before checker verdict (v2, PR 9)
	Conflict      *ConflictInfo `json:"conflict,omitempty"` // abort-forensics summary (v2, PR 10)
}

// NewRunRecord returns a record stamped with the current schema.
func NewRunRecord(experiment string) *RunRecord {
	return &RunRecord{Schema: RunRecordSchema, SchemaVersion: 2, Experiment: experiment}
}

// Attach fills the record's observability sections (metrics snapshot,
// stripe heatmap, trace summary) from the recorder. A nil recorder
// leaves the record untouched.
func (rec *RunRecord) Attach(r *Recorder) {
	if r == nil {
		return
	}
	rec.Metrics = r.reg.Snapshot()
	rec.Stripes = r.heat.Top(64)
	info := &TraceInfo{Dropped: r.Dropped(), Phases: r.Phases(), ByKind: map[string]int{}}
	for _, ev := range r.Events() {
		info.Events++
		info.ByKind[ev.Kind.String()]++
	}
	rec.Trace = info
}

// WriteJSON serializes the record with stable formatting.
func (rec *RunRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// WriteRunRecords serializes one record as an object or several as an
// array, matching what a single -json output file should hold.
func WriteRunRecords(w io.Writer, recs []*RunRecord) error {
	if len(recs) == 1 {
		return recs[0].WriteJSON(w)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// DecodeRunRecords reads what WriteRunRecords (or any older tool)
// wrote: a single record object or an array of them, in either the v1
// or v2 schema. v1 records come back with SchemaVersion normalized to 1
// so consumers can switch on the version without string comparisons;
// unknown schemas are an error rather than a silent misread.
func DecodeRunRecords(r io.Reader) ([]*RunRecord, error) {
	dec := json.NewDecoder(r)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, err
	}
	var recs []*RunRecord
	if len(raw) > 0 && raw[0] == '[' {
		if err := json.Unmarshal(raw, &recs); err != nil {
			return nil, err
		}
	} else {
		var rec RunRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, err
		}
		recs = []*RunRecord{&rec}
	}
	for _, rec := range recs {
		switch {
		case rec.Schema == RunRecordSchemaV1 && rec.SchemaVersion <= 1:
			rec.SchemaVersion = 1
		case rec.Schema == RunRecordSchema && (rec.SchemaVersion == 0 || rec.SchemaVersion == 2):
			rec.SchemaVersion = 2
		default:
			return nil, fmt.Errorf("obs: unknown run-record schema %q (version %d)", rec.Schema, rec.SchemaVersion)
		}
	}
	return recs, nil
}
