package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Events returns every retained event across all threads, ordered by
// (epoch, timestamp, thread, per-thread sequence) — a total order, so
// trace output is byte-stable for a fixed seed.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, rg := range r.rings {
		out = append(out, rg.events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Seq < b.Seq
	})
	return out
}

// WriteChromeTrace renders the retained events as Chrome trace-event
// JSON (the "JSON object format"), loadable in Perfetto or
// chrome://tracing. Each phase (sub-run) becomes its own process, each
// logical thread a track; timestamps are virtual cycles, so the file is
// deterministic and directly comparable across runs and machines.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	for epoch, name := range r.Phases() {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, epoch, name))
	}
	for _, ev := range r.Events() {
		emit(chromeEvent(ev))
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func chromeEvent(ev Event) string {
	if ev.Kind == KindCounter {
		// Counter samples render as Perfetto counter tracks: phase "C",
		// track name = the counter label, sampled value in args.
		return fmt.Sprintf(`{"name":%q,"cat":%q,"ph":"C","ts":%d,"pid":%d,"tid":%d,"args":{"value":%d}}`,
			ev.Label, ev.Kind.Cat(), ev.TS, ev.Epoch, ev.TID, ev.A)
	}
	head := fmt.Sprintf(`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d`,
		ev.Kind.String(), ev.Kind.Cat(), ev.TS, ev.Dur, ev.Epoch, ev.TID)
	var args string
	switch ev.Kind {
	case KindTxCommit:
		args = fmt.Sprintf(`"reads":%d,"writes":%d`, ev.A, ev.B)
	case KindTxAbort:
		stripe := "null"
		if ev.A != NoStripe {
			stripe = fmt.Sprintf("%d", ev.A)
		}
		args = fmt.Sprintf(`"reason":%q,"stripe":%s,"false_abort":%t`, ev.Label, stripe, ev.B != 0)
	case KindAlloc:
		args = fmt.Sprintf(`"alloc":%q,"size":%d,"addr":%d`, ev.Label, ev.A, ev.B)
	case KindFree:
		args = fmt.Sprintf(`"alloc":%q,"addr":%d`, ev.Label, ev.B)
	case KindLockWait:
		args = fmt.Sprintf(`"lock":%q`, ev.Label)
	case KindTransfer:
		args = fmt.Sprintf(`"transfer":%q,"n":%d`, ev.Label, ev.A)
	case KindFault:
		args = fmt.Sprintf(`"fault":%q,"n":%d`, ev.Label, ev.A)
	case KindIrrevocable:
		args = fmt.Sprintf(`"consec_aborts":%d`, ev.A)
	case KindWatchdog:
		args = fmt.Sprintf(`"trigger":%q`, ev.Label)
	case KindRegion:
		args = fmt.Sprintf(`"region":%q`, ev.Label)
	default:
		return head + "}"
	}
	return head + `,"args":{` + args + "}}"
}

// WriteJSONL renders the retained events one JSON object per line, the
// machine-friendly twin of the Chrome export (same order, same fields,
// no enclosing document).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	phases := r.Phases()
	for _, ev := range r.Events() {
		phase := ""
		if int(ev.Epoch) < len(phases) {
			phase = phases[ev.Epoch]
		}
		line := fmt.Sprintf(`{"kind":%q,"cat":%q,"phase":%q,"tid":%d,"ts":%d,"dur":%d,"a":%d,"b":%d`,
			ev.Kind.String(), ev.Kind.Cat(), phase, ev.TID, ev.TS, ev.Dur, ev.A, ev.B)
		if ev.Label != "" {
			line += fmt.Sprintf(`,"label":%q`, ev.Label)
		}
		if _, err := bw.WriteString(line + "}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePrometheus renders the full metrics state — registry first, then
// the heatmap-derived per-stripe series — in Prometheus text format.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	if err := r.reg.WritePrometheus(w); err != nil {
		return err
	}
	return r.heat.WritePrometheus(w, 32)
}
