package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// A nil recorder must accept every emitter and accessor without
// panicking — that is the disabled state all hot paths rely on.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.TxCommit(0, 0, 10, 3, 2)
	r.TxAbort(0, 0, 10, "locked", 7, true, 1, 2)
	r.Alloc("glibc", 0, 0, 5, 16, 0x1000)
	r.Free("glibc", 0, 0, 5, 0x1000)
	r.LockWait(0, 0, 9)
	r.Transfer("x", 0, 3, 1)
	r.Quantum(0, 0, 100)
	r.BeginPhase("p")
	r.Gauge("g", 1)
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Metrics() != nil || r.StripeHeatmap() != nil || r.Events() != nil || r.Phases() != nil {
		t.Fatal("nil recorder leaked non-nil internals")
	}
	if r.Dropped() != 0 || r.EventCount() != 0 {
		t.Fatal("nil recorder reports activity")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRingOverflow(t *testing.T) {
	r := New(Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		r.Quantum(0, uint64(i), uint64(i)+1)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Newest events win: timestamps 6..9.
	if evs[0].TS != 6 || evs[3].TS != 9 {
		t.Fatalf("retained window [%d, %d], want [6, 9]", evs[0].TS, evs[3].TS)
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	if r.EventCount() != 4 {
		t.Fatalf("EventCount = %d, want 4", r.EventCount())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21}, {^uint64(0), histBuckets},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	var h Histogram
	h.Observe(1)
	h.Observe(8)
	h.Observe(9)
	if h.Count() != 3 || h.Sum() != 18 {
		t.Fatalf("count/sum = %d/%d, want 3/18", h.Count(), h.Sum())
	}
	if m := h.Mean(); m != 6 {
		t.Fatalf("mean = %v, want 6", m)
	}
	if (&Histogram{}).Mean() != 0 {
		t.Fatal("empty histogram mean != 0")
	}
}

func TestRegistryPrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`ops_total{alloc="tbb"}`).Add(2)
	reg.Counter(`ops_total{alloc="glibc"}`).Inc()
	reg.Counter("aborts_total").Add(7)
	reg.Gauge("live_bytes").Set(128)
	reg.Histogram("lat_cycles").Observe(3)
	reg.Histogram("lat_cycles").Observe(300)

	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two expositions of one registry differ")
	}
	out := a.String()
	for _, w := range []string{
		"# TYPE aborts_total counter",
		"aborts_total 7",
		`ops_total{alloc="glibc"} 1`,
		`ops_total{alloc="tbb"} 2`,
		"# TYPE live_bytes gauge",
		"# TYPE lat_cycles histogram",
		`lat_cycles_bucket{le="+Inf"} 2`,
		"lat_cycles_sum 303",
		"lat_cycles_count 2",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q\n%s", w, out)
		}
	}
	// Label variants of one family must be grouped under a single # TYPE.
	if strings.Count(out, "# TYPE ops_total counter") != 1 {
		t.Errorf("ops_total family emitted more than one TYPE line:\n%s", out)
	}
	// glibc sorts before tbb within the family.
	if strings.Index(out, `alloc="glibc"`) > strings.Index(out, `alloc="tbb"`) {
		t.Errorf("label variants not sorted:\n%s", out)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total").Inc()
	reg.Counter("a_total").Add(3)
	reg.Histogram("h").Observe(5)
	s1, _ := json.Marshal(reg.Snapshot())
	s2, _ := json.Marshal(reg.Snapshot())
	if !bytes.Equal(s1, s2) {
		t.Fatal("snapshot JSON not deterministic")
	}
	var back Snapshot
	if err := json.Unmarshal(s1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 3 {
		t.Fatalf("round-trip lost counter: %v", back.Counters)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap()
	// Two different placements colliding on entry 5: false abort.
	h.Record(5, true, 100, 200)
	h.Record(5, true, 100, 200)
	// Same placement on entry 9: a true conflict.
	h.Record(9, false, 300, 300)
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	if h.TotalFalseAborts() != 2 {
		t.Fatalf("TotalFalseAborts = %d, want 2", h.TotalFalseAborts())
	}
	top := h.Top(10)
	if len(top) != 2 || top[0].Entry != 5 {
		t.Fatalf("Top order wrong: %+v", top)
	}
	if !top[0].Aliased || top[1].Aliased {
		t.Fatalf("aliasing flags wrong: %+v", top)
	}
	if len(top[0].Placements) != 2 {
		t.Fatalf("entry 5 placements = %+v, want two keys", top[0].Placements)
	}

	// The placement cap folds extra keys into OtherPlacements instead of
	// growing without bound.
	for k := uint64(0); k < 3*maxPlacements; k++ {
		h.Record(7, true, k, k+1000)
	}
	var cell StripeJSON
	for _, c := range h.Top(100) {
		if c.Entry == 7 {
			cell = c
		}
	}
	if len(cell.Placements) != maxPlacements || cell.OtherPlacements == 0 {
		t.Fatalf("placement cap not applied: %+v", cell)
	}

	var buf bytes.Buffer
	if err := h.WritePrometheus(&buf, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stm_stripe_false_aborts_bucket") {
		t.Fatalf("heatmap exposition missing histogram:\n%s", buf.String())
	}
}

func TestChromeTraceValidAndStable(t *testing.T) {
	build := func() *Recorder {
		r := New(Config{RingSize: 64})
		r.BeginPhase("phase-a")
		r.TxCommit(1, 10, 25, 4, 2)
		r.TxAbort(0, 12, 30, "locked", 7, true, 3, 9)
		r.TxAbort(0, 31, 40, "validation", NoStripe, false, 0, 0)
		r.Alloc("tbb", 0, 50, 58, 48, 0x4000)
		r.Free("tbb", 1, 60, 64, 0x4000)
		r.LockWait(1, 70, 90)
		r.Transfer("tbb:sb-refill", 0, 95, 16)
		r.Quantum(0, 0, 100)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("identical recorders produced different traces")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	var sawNullStripe bool
	for _, ev := range doc.TraceEvents {
		if c, ok := ev["cat"].(string); ok {
			cats[c] = true
		}
		if ev["name"] == "tx-abort" {
			if args, ok := ev["args"].(map[string]any); ok && args["stripe"] == nil {
				sawNullStripe = true
			}
		}
	}
	for _, want := range []string{"stm", "alloc", "sched"} {
		if !cats[want] {
			t.Errorf("trace missing category %q (got %v)", want, cats)
		}
	}
	if !sawNullStripe {
		t.Error("unattributed abort did not render stripe:null")
	}

	var jl bytes.Buffer
	if err := build().WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(jl.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("JSONL line %d invalid: %v", i, err)
		}
	}
}

func TestRunRecordAttachAndWrite(t *testing.T) {
	r := New(Config{RingSize: 16})
	r.BeginPhase("p0")
	r.TxCommit(0, 0, 9, 1, 1)
	r.TxAbort(0, 2, 7, "locked", 3, true, 10, 11)

	rec := &RunRecord{
		Schema:     RunRecordSchema,
		Experiment: "test",
		Config:     RunConfig{Seed: 42},
		Tables:     []Table{{Columns: []string{"a"}, Rows: [][]string{{"1"}}}},
		Series:     []Series{{Label: "s", X: []float64{1}, Y: []float64{2}}},
	}
	rec.Attach(r)
	if rec.Metrics == nil || rec.Trace == nil {
		t.Fatal("Attach left metrics/trace nil")
	}
	if rec.Trace.Events != 2 {
		t.Fatalf("trace events = %d, want 2", rec.Trace.Events)
	}
	if len(rec.Stripes) != 1 || !rec.Stripes[0].Aliased {
		t.Fatalf("stripes = %+v", rec.Stripes)
	}

	var one, many bytes.Buffer
	if err := rec.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	var back RunRecord
	if err := json.Unmarshal(one.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != RunRecordSchema || back.Experiment != "test" {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if err := WriteRunRecords(&many, []*RunRecord{rec, rec}); err != nil {
		t.Fatal(err)
	}
	var arr []RunRecord
	if err := json.Unmarshal(many.Bytes(), &arr); err != nil || len(arr) != 2 {
		t.Fatalf("two records should serialize as an array: %v", err)
	}

	// A record with no recorder stays a plain result container.
	plain := &RunRecord{Schema: RunRecordSchema, Experiment: "plain"}
	plain.Attach(nil)
	if plain.Metrics != nil || plain.Trace != nil {
		t.Fatal("Attach(nil) touched the record")
	}
}

func TestPhasesAndEpochs(t *testing.T) {
	r := New(Config{RingSize: 8})
	r.Quantum(0, 0, 1) // epoch 0 ("run")
	r.BeginPhase("a")
	r.Quantum(0, 1, 2) // epoch 1
	r.BeginPhase("b")
	r.Quantum(0, 2, 3) // epoch 2
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, want := range []int32{0, 1, 2} {
		if evs[i].Epoch != want {
			t.Fatalf("event %d epoch = %d, want %d", i, evs[i].Epoch, want)
		}
	}
	if ph := r.Phases(); len(ph) != 3 || ph[0] != "run" || ph[2] != "b" {
		t.Fatalf("phases = %v", ph)
	}
}
