package obs

import (
	"strings"
	"testing"
)

const v1Fixture = `{
  "schema": "tmrepro/run-record/v1",
  "experiment": "fig4",
  "title": "legacy record",
  "config": {"full": false, "seed": 633319},
  "tables": [{"columns": ["a"], "rows": [["1"]]}]
}`

func TestDecodeRunRecordsV1(t *testing.T) {
	recs, err := DecodeRunRecords(strings.NewReader(v1Fixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("decoded %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Schema != RunRecordSchemaV1 || r.SchemaVersion != 1 {
		t.Errorf("v1 record normalized to schema %q version %d", r.Schema, r.SchemaVersion)
	}
	if r.Experiment != "fig4" || r.Config.Seed != 633319 {
		t.Errorf("v1 fields lost: %+v", r)
	}
	if r.Sweep != nil {
		t.Error("v1 records predate sweep provenance; decoder must not invent it")
	}
}

func TestDecodeRunRecordsV2(t *testing.T) {
	rec := NewRunRecord("tab4")
	rec.Sweep = &SweepInfo{CellSet: "abc", Cells: 3, Executed: 2, Cached: 1, Jobs: 8}
	var buf strings.Builder
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeRunRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r.Schema != RunRecordSchema || r.SchemaVersion != 2 {
		t.Errorf("v2 record decoded as schema %q version %d", r.Schema, r.SchemaVersion)
	}
	if r.Sweep == nil || r.Sweep.Cells != 3 || r.Sweep.Cached != 1 || r.Sweep.Jobs != 8 {
		t.Errorf("sweep provenance lost: %+v", r.Sweep)
	}
}

func TestDecodeRunRecordsArray(t *testing.T) {
	recs, err := DecodeRunRecords(strings.NewReader("[" + v1Fixture + "," + v1Fixture + "]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].SchemaVersion != 1 {
		t.Fatalf("array decode = %d records (last version %d), want 2 v1 records",
			len(recs), recs[len(recs)-1].SchemaVersion)
	}
}

func TestDecodeRunRecordsUnknownSchema(t *testing.T) {
	in := strings.Replace(v1Fixture, "run-record/v1", "run-record/v9", 1)
	if _, err := DecodeRunRecords(strings.NewReader(in)); err == nil {
		t.Fatal("unknown schema must be an error, not a silent pass-through")
	}
}
