package obs_test

import (
	"bytes"
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/tbb"

	"repro/internal/intset"
	"repro/internal/obs"
)

// run executes a small contended intset workload with a fresh recorder
// and returns the recorder plus its three serialized outputs.
func run(t *testing.T, allocator string) (*obs.Recorder, []byte, []byte, []byte) {
	t.Helper()
	rec := obs.New(obs.Config{})
	_, err := intset.Run(intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    allocator,
		Threads:      4,
		InitialSize:  128,
		KeyRange:     256,
		UpdatePct:    60,
		OpsPerThread: 60,
		Obs:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace, prom, jsonl bytes.Buffer
	if err := rec.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := rec.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	return rec, trace.Bytes(), prom.Bytes(), jsonl.Bytes()
}

// The recorder must capture events from the STM and the allocator (and
// the scheduler) in one run, and the stripe heatmap must attribute the
// false aborts a 16-byte-spacing allocator provokes on the linked list.
func TestWorkloadCoverage(t *testing.T) {
	rec, _, prom, _ := run(t, "tbb")

	kinds := map[obs.Kind]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	if kinds[obs.KindTxCommit] == 0 {
		t.Error("no tx-commit events recorded")
	}
	if kinds[obs.KindAlloc] == 0 || kinds[obs.KindFree] == 0 {
		t.Error("no allocator events recorded")
	}
	if kinds[obs.KindQuantum] == 0 {
		t.Error("no scheduler events recorded")
	}

	if rec.StripeHeatmap().TotalFalseAborts() == 0 {
		t.Error("contended linked list over tbb produced no false aborts in the heatmap")
	}
	if !bytes.Contains(prom, []byte("stm_stripe_false_aborts_bucket")) {
		t.Error("Prometheus output missing the per-stripe false-abort histogram")
	}
	if !bytes.Contains(prom, []byte(`alloc_ops_total{alloc="tbb",op="malloc"}`)) {
		t.Error("Prometheus output missing allocator op counters")
	}
}

// Two runs with identical configuration must serialize to identical
// bytes: every timestamp is virtual and every map is emitted sorted.
func TestOutputsDeterministic(t *testing.T) {
	_, trace1, prom1, jsonl1 := run(t, "glibc")
	_, trace2, prom2, jsonl2 := run(t, "glibc")
	if !bytes.Equal(trace1, trace2) {
		t.Error("Chrome traces of identical runs differ")
	}
	if !bytes.Equal(prom1, prom2) {
		t.Error("Prometheus outputs of identical runs differ")
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Error("JSONL outputs of identical runs differ")
	}
}
