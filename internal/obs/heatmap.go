package obs

import (
	"fmt"
	"io"
	"sort"
)

// maxPlacements bounds how many distinct placement keys one stripe cell
// names before further keys are folded into OtherPlacements.
const maxPlacements = 8

// Heatmap attributes transactional conflicts to ORT entries — the
// paper's Fig. 5 mechanism made observable on any workload. Each cell
// counts the conflicts and false aborts an ORT entry caused and names
// the distinct *placement keys* (block address >> shift, i.e. which
// 2^shift-byte memory stripes) that collided there, so an aliasing
// entry (two placements far apart mapping to one versioned lock — the
// Glibc 64 MiB arena effect) is directly readable from the output.
type Heatmap struct {
	cells map[uint64]*StripeCell
}

// StripeCell is one ORT entry's conflict record.
type StripeCell struct {
	Entry           uint64
	Conflicts       uint64 // aborts attributed to this entry
	FalseAborts     uint64 // conflicts between different addresses
	placements      map[uint64]uint64
	OtherPlacements uint64 // collisions past the maxPlacements cap
}

// NewHeatmap builds an empty heatmap.
func NewHeatmap() *Heatmap {
	return &Heatmap{cells: make(map[uint64]*StripeCell)}
}

// Record attributes one abort to ORT entry. ownerKey and reqKey are the
// placement keys of the access holding/having-versioned the stripe and
// of the access that died; on a false abort they differ.
func (h *Heatmap) Record(entry uint64, falseAbort bool, ownerKey, reqKey uint64) {
	c := h.cells[entry]
	if c == nil {
		c = &StripeCell{Entry: entry, placements: make(map[uint64]uint64, 2)}
		h.cells[entry] = c
	}
	c.Conflicts++
	if falseAbort {
		c.FalseAborts++
	}
	c.note(ownerKey)
	if reqKey != ownerKey {
		c.note(reqKey)
	}
}

func (c *StripeCell) note(key uint64) {
	if _, ok := c.placements[key]; !ok && len(c.placements) >= maxPlacements {
		c.OtherPlacements++
		return
	}
	c.placements[key]++
}

// Len returns the number of ORT entries with at least one conflict.
func (h *Heatmap) Len() int { return len(h.cells) }

// TotalFalseAborts sums false aborts over all cells.
func (h *Heatmap) TotalFalseAborts() uint64 {
	var n uint64
	for _, c := range h.cells {
		n += c.FalseAborts
	}
	return n
}

// PlacementJSON is one colliding placement in serialized form.
type PlacementJSON struct {
	Key   uint64 `json:"key"` // block address >> shift
	Count uint64 `json:"count"`
}

// StripeJSON is the serialized form of one heatmap cell.
type StripeJSON struct {
	Entry           uint64          `json:"entry"`
	Conflicts       uint64          `json:"conflicts"`
	FalseAborts     uint64          `json:"false_aborts"`
	Placements      []PlacementJSON `json:"placements,omitempty"`
	OtherPlacements uint64          `json:"other_placements,omitempty"`
	Aliased         bool            `json:"aliased"` // >1 distinct placement collided here
}

func (c *StripeCell) toJSON() StripeJSON {
	out := StripeJSON{
		Entry:           c.Entry,
		Conflicts:       c.Conflicts,
		FalseAborts:     c.FalseAborts,
		OtherPlacements: c.OtherPlacements,
		Aliased:         len(c.placements) > 1 || c.OtherPlacements > 0,
	}
	keys := make([]uint64, 0, len(c.placements))
	for k := range c.placements {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		out.Placements = append(out.Placements, PlacementJSON{Key: k, Count: c.placements[k]})
	}
	return out
}

// Top returns the n hottest cells ordered by false aborts, then
// conflicts, then entry index (fully deterministic).
func (h *Heatmap) Top(n int) []StripeJSON {
	cells := make([]*StripeCell, 0, len(h.cells))
	for _, c := range h.cells {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.FalseAborts != b.FalseAborts {
			return a.FalseAborts > b.FalseAborts
		}
		if a.Conflicts != b.Conflicts {
			return a.Conflicts > b.Conflicts
		}
		return a.Entry < b.Entry
	})
	if n > 0 && len(cells) > n {
		cells = cells[:n]
	}
	out := make([]StripeJSON, len(cells))
	for i, c := range cells {
		out[i] = c.toJSON()
	}
	return out
}

// WritePrometheus renders the heatmap as Prometheus metrics: a
// histogram of per-stripe false-abort counts (every conflicted entry is
// one observation) plus per-entry detail series for the topN hottest
// entries (labelled with the colliding placement keys so the aliasing
// pairs are named in the exposition itself).
func (h *Heatmap) WritePrometheus(w io.Writer, topN int) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	var dist Histogram
	for _, c := range h.cells {
		dist.Observe(c.FalseAborts)
	}
	p("# TYPE stm_stripe_false_aborts histogram\n")
	cum := uint64(0)
	for i := 0; i <= histBuckets; i++ {
		if dist.buckets[i] == 0 && i < histBuckets {
			continue
		}
		cum += dist.buckets[i]
		le := "+Inf"
		if i < histBuckets {
			le = fmt.Sprintf("%d", bucketBound(i))
		}
		p("stm_stripe_false_aborts_bucket{le=%q} %d\n", le, cum)
	}
	p("stm_stripe_false_aborts_sum %d\n", dist.sum)
	p("stm_stripe_false_aborts_count %d\n", dist.count)

	p("# TYPE stm_stripe_conflicts gauge\n")
	for _, s := range h.Top(topN) {
		placements := ""
		for i, pl := range s.Placements {
			if i > 0 {
				placements += " "
			}
			placements += fmt.Sprintf("%#x:%d", pl.Key, pl.Count)
		}
		p("stm_stripe_conflicts{entry=\"%d\",false_aborts=\"%d\",placements=%q} %d\n",
			s.Entry, s.FalseAborts, placements, s.Conflicts)
	}
	return err
}
