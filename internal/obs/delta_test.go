package obs

import (
	"reflect"
	"testing"
)

// TestDeltaMergeDeterminism is the scheduler's observability
// contract: per-cell sibling recorders merged in cell order produce
// the same parent state regardless of which host goroutine ran which
// cell — because the deltas themselves are only touched at Apply time.
func TestDeltaMergeDeterminism(t *testing.T) {
	build := func() *Recorder {
		parent := New(Config{RingSize: 64})
		a := parent.Sibling()
		a.BeginPhase("cell-a")
		a.TxCommit(0, 0, 10, 2, 1)
		a.Metrics().Counter("tm_tx_commits_total").Add(1)
		a.Metrics().Gauge("alloc_heap_bytes").Set(100)

		b := parent.Sibling()
		b.BeginPhase("cell-b")
		b.TxAbort(1, 0, 5, "locked", 3, true, 7, 8)
		b.Metrics().Counter("tm_tx_commits_total").Add(2)
		b.Metrics().Gauge("alloc_heap_bytes").Set(250)

		parent.Apply(a.Delta())
		parent.Apply(b.Delta())
		return parent
	}
	p1, p2 := build(), build()
	s1, s2 := p1.Metrics().Snapshot(), p2.Metrics().Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("merge is not deterministic: %+v vs %+v", s1, s2)
	}
	if s1.Counters["tm_tx_commits_total"] != 3 {
		t.Errorf("counters must add across deltas: %+v", s1.Counters)
	}
	if s1.Gauges["alloc_heap_bytes"] != 250 {
		t.Errorf("gauges are watermarks and must merge by max: %+v", s1.Gauges)
	}
	// Every recorder opens with the implicit "run" phase; the merged
	// list carries each cell's phase history verbatim, in apply order.
	want := []string{"run", "run", "cell-a", "run", "cell-b"}
	if got := p1.Phases(); !reflect.DeepEqual(got, want) {
		t.Errorf("phases = %v, want %v", got, want)
	}
	if p1.EventCount() != 2 {
		t.Errorf("events = %d, want both cells' events", p1.EventCount())
	}
	// Events keep their origin phase: the abort recorded in cell-b must
	// sit in the remapped second epoch, not the first.
	evs := p1.Events()
	var abortEpoch, commitEpoch int32 = -1, -1
	for _, ev := range evs {
		switch ev.Kind.String() {
		case "tx-abort":
			abortEpoch = ev.Epoch
		case "tx-commit":
			commitEpoch = ev.Epoch
		}
	}
	if commitEpoch == abortEpoch {
		t.Errorf("epochs not remapped: commit epoch %d, abort epoch %d", commitEpoch, abortEpoch)
	}
}

func TestDeltaNilSafety(t *testing.T) {
	var r *Recorder
	if d := r.Delta(); d != nil {
		t.Error("nil recorder must yield a nil delta")
	}
	parent := New(Config{})
	parent.Apply(nil) // must not panic
	if s := (*Recorder)(nil).Sibling(); s != nil {
		t.Error("nil recorder must yield a nil sibling")
	}
}
