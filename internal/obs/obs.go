// Package obs is the unified observability layer: virtual-time event
// tracing, a metrics registry with Prometheus/JSON output, a per-ORT-
// stripe contention heatmap, and machine-readable run artifacts.
//
// A *Recorder is the single handle the instrumented subsystems (stm,
// alloc, vtime, harness) hold. A nil *Recorder is the disabled state:
// every emitter method is safe to call on nil and returns immediately,
// so the cost of disabled instrumentation at a call site is one pointer
// nil-check. All timestamps are virtual cycles from the vtime engine —
// never wall clock — so recorded traces and metrics are byte-for-byte
// deterministic for a fixed seed.
//
// Events are buffered in fixed-capacity per-logical-thread ring buffers
// (the newest events win; the drop count is reported). Exporters render
// the merged, deterministically ordered stream as Chrome trace-event
// JSON (loadable in Perfetto or chrome://tracing) or as JSONL.
package obs

import "fmt"

// Kind classifies one recorded event.
type Kind uint8

// Event kinds.
const (
	KindTxCommit    Kind = iota // committed transaction (dur = whole attempt)
	KindTxAbort                 // aborted attempt (cause + ORT stripe in args)
	KindAlloc                   // allocator malloc (dur = allocator latency)
	KindFree                    // allocator free
	KindLockWait                // contended wait on an allocator lock
	KindTransfer                // superblock / central-cache / arena transfer
	KindQuantum                 // one scheduler quantum of a logical thread
	KindFault                   // an injected or detected fault (OOM, bad free, storm, stall)
	KindIrrevocable             // a transaction ran irrevocably under the fallback lock
	KindWatchdog                // the harness watchdog fired (deadline / captured panic)
	KindRegion                  // a closed profiler region (dur = region span)
	KindCounter                 // one periodic counter sample (heap telemetry; value in A)
	kindCount
)

func (k Kind) String() string {
	switch k {
	case KindTxCommit:
		return "tx-commit"
	case KindTxAbort:
		return "tx-abort"
	case KindAlloc:
		return "malloc"
	case KindFree:
		return "free"
	case KindLockWait:
		return "lock-wait"
	case KindTransfer:
		return "transfer"
	case KindQuantum:
		return "quantum"
	case KindFault:
		return "fault"
	case KindIrrevocable:
		return "irrevocable"
	case KindWatchdog:
		return "watchdog"
	case KindRegion:
		return "region"
	case KindCounter:
		return "counter"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Cat returns the trace category (the emitting subsystem).
func (k Kind) Cat() string {
	switch k {
	case KindTxCommit, KindTxAbort:
		return "stm"
	case KindAlloc, KindFree, KindLockWait, KindTransfer:
		return "alloc"
	case KindQuantum:
		return "sched"
	case KindFault:
		return "fault"
	case KindIrrevocable:
		return "stm"
	case KindWatchdog:
		return "harness"
	case KindRegion:
		return "prof"
	case KindCounter:
		return "heap"
	}
	return "obs"
}

// Event is one recorded occurrence. TS and Dur are virtual cycles. The
// meaning of A and B depends on Kind:
//
//	KindTxCommit: A = read-set size, B = write-set size
//	KindTxAbort:  A = ORT entry index (NoStripe if unattributed),
//	              B = 1 for a false (stripe-sharing/aliasing) abort
//	KindAlloc:    A = requested size, B = block address
//	KindFree:     B = block address
//	KindTransfer: A = payload count (blocks moved, bytes, ...)
//	KindLockWait, KindQuantum: unused
type Event struct {
	Kind  Kind
	TID   int32
	Epoch int32 // phase index (sub-run) the event belongs to
	Seq   uint64
	TS    uint64
	Dur   uint64
	A, B  uint64
	Label string // reason / allocator / lock / transfer kind
}

// NoStripe marks a tx abort with no single attributable ORT entry
// (e.g. commit-time read-set validation failure).
const NoStripe = ^uint64(0)

// DefaultRingSize is the per-thread event ring capacity.
const DefaultRingSize = 1 << 15

// Config parameterizes a Recorder.
type Config struct {
	RingSize int // events retained per logical thread (default 1<<15)
}

// ring is a per-thread overwrite-oldest event buffer.
type ring struct {
	buf []Event
	n   uint64 // events ever pushed; buf index = seq % len(buf)
}

func (r *ring) push(ev Event) {
	ev.Seq = r.n
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
}

// events returns the retained events in push order.
func (r *ring) events() []Event {
	if r.n <= uint64(len(r.buf)) {
		return r.buf[:r.n]
	}
	out := make([]Event, 0, len(r.buf))
	for seq := r.n - uint64(len(r.buf)); seq < r.n; seq++ {
		out = append(out, r.buf[seq%uint64(len(r.buf))])
	}
	return out
}

func (r *ring) dropped() uint64 {
	if r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Recorder collects events and metrics. The zero value is not usable;
// construct with New. A nil *Recorder disables all instrumentation.
//
// Recorder is not host-thread-safe: the vtime engine serializes real
// execution (at most one logical thread runs at any instant), which is
// the concurrency model all instrumented subsystems already obey.
type Recorder struct {
	ringSize int
	rings    []*ring
	epoch    int32
	phases   []string

	// extraDropped counts events already dropped inside merged Deltas
	// (they never reached this recorder's rings).
	extraDropped uint64

	reg  *Registry
	heat *Heatmap

	// Pre-resolved hot-path instruments (avoid registry lookups on the
	// commit and alloc paths).
	txCommits  *Counter
	txLatency  *Histogram
	txReadSet  *Histogram
	txWriteSet *Histogram
	lockWaits  *Counter
	lockCycles *Histogram
	quanta     *Counter

	// Label interning for the labeled emitters: the full instrument name
	// (`alloc_ops_total{alloc="glibc",op="malloc"}`) is concatenated only
	// on a label's first appearance; steady-state emits are a map lookup
	// on the bare label, so the hot emit paths stay allocation-free.
	abortReasons  map[string]*Counter
	allocMallocs  map[string]*Counter
	allocFrees    map[string]*Counter
	allocLatency  map[latKey]*Histogram
	transferKinds map[string]*Counter
	faultKinds    map[string]*Counter
}

// latKey keys the per-allocator, per-size-class latency histograms.
type latKey struct {
	alloc string
	class string
}

// New builds an enabled Recorder.
func New(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	reg := NewRegistry()
	r := &Recorder{
		ringSize: cfg.RingSize,
		reg:      reg,
		heat:     NewHeatmap(),
		phases:   []string{"run"},

		txCommits:  reg.Counter("stm_tx_commits_total"),
		txLatency:  reg.Histogram("stm_tx_latency_cycles"),
		txReadSet:  reg.Histogram("stm_tx_read_set_size"),
		txWriteSet: reg.Histogram("stm_tx_write_set_size"),
		lockWaits:  reg.Counter("alloc_lock_waits_total"),
		lockCycles: reg.Histogram("alloc_lock_wait_cycles"),
		quanta:     reg.Counter("sched_quanta_total"),

		abortReasons:  make(map[string]*Counter),
		allocMallocs:  make(map[string]*Counter),
		allocFrees:    make(map[string]*Counter),
		allocLatency:  make(map[latKey]*Histogram),
		transferKinds: make(map[string]*Counter),
		faultKinds:    make(map[string]*Counter),
	}
	return r
}

// Sibling returns a fresh empty recorder with the same configuration —
// the per-cell private recorder whose Delta is later applied back into
// this one (nil on a nil recorder).
func (r *Recorder) Sibling() *Recorder {
	if r == nil {
		return nil
	}
	return New(Config{RingSize: r.ringSize})
}

// Enabled reports whether the recorder is active (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Metrics returns the metrics registry (nil on a nil recorder).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// StripeHeatmap returns the per-ORT-stripe heatmap (nil on a nil
// recorder).
func (r *Recorder) StripeHeatmap() *Heatmap {
	if r == nil {
		return nil
	}
	return r.heat
}

// BeginPhase starts a new phase (sub-run). Subsequent events carry the
// new epoch and the trace exporter renders each phase as its own
// process, so multi-configuration experiment sweeps stay legible.
func (r *Recorder) BeginPhase(name string) {
	if r == nil {
		return
	}
	r.epoch = int32(len(r.phases))
	r.phases = append(r.phases, name)
}

// Phases returns the phase names, index == epoch.
func (r *Recorder) Phases() []string {
	if r == nil {
		return nil
	}
	return r.phases
}

func (r *Recorder) push(tid int, ev Event) {
	for tid >= len(r.rings) {
		r.rings = append(r.rings, &ring{buf: make([]Event, r.ringSize)})
	}
	ev.TID = int32(tid)
	ev.Epoch = r.epoch
	r.rings[tid].push(ev)
}

// TxCommit records a committed transaction spanning [start, end].
func (r *Recorder) TxCommit(tid int, start, end uint64, reads, writes int) {
	if r == nil {
		return
	}
	r.txCommits.Inc()
	r.txLatency.Observe(end - start)
	r.txReadSet.Observe(uint64(reads))
	r.txWriteSet.Observe(uint64(writes))
	r.push(tid, Event{Kind: KindTxCommit, TS: start, Dur: end - start,
		A: uint64(reads), B: uint64(writes)})
}

// TxAbort records an aborted transaction attempt. reason is the abort
// cause ("locked-by-other", "version-ahead", ...). stripe is the ORT
// entry whose conflict killed the attempt (NoStripe when the abort has
// no single attributable entry). falseAbort marks a conflict where the
// competing access was to a *different* address that merely shares or
// aliases to the stripe — the paper's placement-induced abort. ownerKey
// and reqKey are the placement keys (addr >> shift) of the two accesses
// feeding the heatmap's "which placements alias" attribution.
func (r *Recorder) TxAbort(tid int, start, end uint64, reason string, stripe uint64, falseAbort bool, ownerKey, reqKey uint64) {
	if r == nil {
		return
	}
	c, ok := r.abortReasons[reason]
	if !ok {
		c = r.reg.Counter(`stm_tx_aborts_total{reason="` + reason + `"}`)
		r.abortReasons[reason] = c
	}
	c.Inc()
	var fa uint64
	if falseAbort {
		fa = 1
		r.reg.Counter("stm_tx_false_aborts_total").Inc()
	}
	if stripe != NoStripe {
		r.heat.Record(stripe, falseAbort, ownerKey, reqKey)
	}
	r.push(tid, Event{Kind: KindTxAbort, TS: start, Dur: end - start,
		A: stripe, B: fa, Label: reason})
}

// sizeClass buckets a request size Table 5-style.
func sizeClass(size uint64) string {
	switch {
	case size <= 16:
		return "<=16"
	case size <= 32:
		return "<=32"
	case size <= 48:
		return "<=48"
	case size <= 64:
		return "<=64"
	case size <= 96:
		return "<=96"
	case size <= 128:
		return "<=128"
	case size <= 256:
		return "<=256"
	}
	return ">256"
}

// Alloc records one allocator malloc spanning [start, end] virtual
// cycles inside the named allocator.
func (r *Recorder) Alloc(allocator string, tid int, start, end uint64, size, addr uint64) {
	if r == nil {
		return
	}
	c, ok := r.allocMallocs[allocator]
	if !ok {
		c = r.reg.Counter(`alloc_ops_total{alloc="` + allocator + `",op="malloc"}`)
		r.allocMallocs[allocator] = c
	}
	c.Inc()
	lk := latKey{alloc: allocator, class: sizeClass(size)}
	h, ok := r.allocLatency[lk]
	if !ok {
		h = r.reg.Histogram(`alloc_latency_cycles{alloc="` + lk.alloc + `",class="` + lk.class + `"}`)
		r.allocLatency[lk] = h
	}
	h.Observe(end - start)
	r.push(tid, Event{Kind: KindAlloc, TS: start, Dur: end - start,
		A: size, B: addr, Label: allocator})
}

// Free records one allocator free.
func (r *Recorder) Free(allocator string, tid int, start, end uint64, addr uint64) {
	if r == nil {
		return
	}
	c, ok := r.allocFrees[allocator]
	if !ok {
		c = r.reg.Counter(`alloc_ops_total{alloc="` + allocator + `",op="free"}`)
		r.allocFrees[allocator] = c
	}
	c.Inc()
	r.push(tid, Event{Kind: KindFree, TS: start, Dur: end - start,
		B: addr, Label: allocator})
}

// LockWait records a contended wait on an allocator lock.
func (r *Recorder) LockWait(tid int, start, end uint64) {
	if r == nil {
		return
	}
	r.lockWaits.Inc()
	r.lockCycles.Observe(end - start)
	r.push(tid, Event{Kind: KindLockWait, TS: start, Dur: end - start, Label: "alloc-lock"})
}

// Transfer records a bulk ownership movement inside an allocator —
// a Hoard superblock migrating to/from the global heap, a TCMalloc
// central-cache refill, a fresh Glibc arena — with an optional payload
// count n (blocks moved, bytes, ...).
func (r *Recorder) Transfer(kind string, tid int, clock uint64, n uint64) {
	if r == nil {
		return
	}
	c, ok := r.transferKinds[kind]
	if !ok {
		c = r.reg.Counter(`alloc_transfers_total{kind="` + kind + `"}`)
		r.transferKinds[kind] = c
	}
	c.Inc()
	r.push(tid, Event{Kind: KindTransfer, TS: clock, A: n, Label: kind})
}

// Quantum records one scheduler slice of a logical thread.
func (r *Recorder) Quantum(tid int, start, end uint64) {
	if r == nil {
		return
	}
	r.quanta.Inc()
	r.push(tid, Event{Kind: KindQuantum, TS: start, Dur: end - start})
}

// Fault records one injected or detected fault. kind names the fault
// class ("oom", "lat-spike", "stall", "abort-storm", "double-free",
// "bad-free", ...); a is fault-specific payload (malloc count, stall
// cycles, faulting address).
func (r *Recorder) Fault(kind string, tid int, clock uint64, a uint64) {
	if r == nil {
		return
	}
	c, ok := r.faultKinds[kind]
	if !ok {
		c = r.reg.Counter(`fault_injected_total{kind="` + kind + `"}`)
		r.faultKinds[kind] = c
	}
	c.Inc()
	r.push(tid, Event{Kind: KindFault, TS: clock, A: a, Label: kind})
}

// Irrevocable records one transaction that fell back to irrevocable
// execution under the global fallback lock after exhausting its retry
// cap, spanning [start, end] virtual cycles. aborts is the consecutive-
// abort streak that triggered the fallback.
func (r *Recorder) Irrevocable(tid int, start, end uint64, aborts uint64) {
	if r == nil {
		return
	}
	r.reg.Counter("stm_irrevocable_total").Inc()
	r.reg.Histogram("stm_irrevocable_cycles").Observe(end - start)
	r.push(tid, Event{Kind: KindIrrevocable, TS: start, Dur: end - start, A: aborts})
}

// Starvation publishes the livelock/starvation detector's watermarks:
// the worst consecutive-abort streak and the largest commit-age gap
// (virtual cycles between two successive commits of one thread) seen so
// far.
func (r *Recorder) Starvation(maxConsecAborts, maxCommitGap uint64) {
	if r == nil {
		return
	}
	g := r.reg.Gauge("stm_max_consecutive_aborts")
	if float64(maxConsecAborts) > g.Value() {
		g.Set(float64(maxConsecAborts))
	}
	g = r.reg.Gauge("stm_max_commit_gap_cycles")
	if float64(maxCommitGap) > g.Value() {
		g.Set(float64(maxCommitGap))
	}
}

// Watchdog records the harness watchdog firing. label describes the
// trigger ("deadline" or "panic").
func (r *Recorder) Watchdog(label string, tid int, clock uint64) {
	if r == nil {
		return
	}
	r.reg.Counter(`watchdog_trips_total{trigger="` + label + `"}`).Inc()
	r.push(tid, Event{Kind: KindWatchdog, TS: clock, Label: label})
}

// Region records one closed profiler region spanning [start, end] —
// the bridge that puts prof's phase structure on the trace's
// per-thread tracks. Emitted only when a run is both traced and
// profiled (prof.Profiler.SetRecorder).
func (r *Recorder) Region(tid int, start, end uint64, name string) {
	if r == nil {
		return
	}
	r.push(tid, Event{Kind: KindRegion, TS: start, Dur: end - start, Label: name})
}

// Counter records one sampled value of the named counter track at
// virtual cycle ts — the heapscope bridge that renders allocator-state
// series as Perfetto counter tracks ("C" phase) alongside the event
// spans. Counter samples are attributed to thread 0's ring: they
// describe whole-heap state, not one thread's activity.
func (r *Recorder) Counter(name string, ts uint64, v uint64) {
	if r == nil {
		return
	}
	r.push(0, Event{Kind: KindCounter, TS: ts, A: v, Label: name})
}

// Gauge sets a named gauge (convenience passthrough).
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.reg.Gauge(name).Set(v)
}

// Dropped returns how many events were overwritten in the rings.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	d := r.extraDropped
	for _, rg := range r.rings {
		d += rg.dropped()
	}
	return d
}

// EventCount returns how many events are currently retained.
func (r *Recorder) EventCount() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, rg := range r.rings {
		n += len(rg.events())
	}
	return n
}
