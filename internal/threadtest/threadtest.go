// Package threadtest implements the Hoard threadtest microbenchmark the
// paper uses for Figure 3: a configurable number of threads that do
// nothing but allocate a block and free it again immediately, measuring
// allocator throughput as a function of block size. No STM is involved;
// this isolates the allocators' fast paths, synchronization and
// false-sharing behaviour.
package threadtest

import (
	"repro/internal/alloc"
	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// Config parameterizes one threadtest run.
type Config struct {
	Allocator    string
	Threads      int    // paper: 8
	BlockSize    uint64 // paper sweeps 16 .. 8192
	OpsPerThread int    // malloc/free pairs per thread
	TouchWords   int    // words written into each block (threadtest touches its blocks)
}

// Result reports throughput and supporting counters.
type Result struct {
	Config     Config
	Cycles     uint64
	Throughput float64 // malloc/free pairs per modelled second
	Alloc      alloc.Stats
	FalseShare uint64 // false-sharing coherence misses observed
}

// Run executes the microbenchmark.
func Run(cfg Config) (Result, error) {
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = 2000
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 16
	}
	if cfg.TouchWords == 0 {
		cfg.TouchWords = 1
	}
	space := mem.NewSpace()
	allocator, err := alloc.New(cfg.Allocator, space, cfg.Threads)
	if err != nil {
		return Result{}, err
	}
	cache := cachesim.New(cachesim.DefaultCores)
	engine := vtime.NewEngine(space, cfg.Threads, vtime.Config{Cache: cache})

	touch := cfg.TouchWords
	if uint64(touch*8) > cfg.BlockSize {
		touch = int(cfg.BlockSize / 8)
		if touch == 0 {
			touch = 1
		}
	}
	engine.Run(func(th *vtime.Thread) {
		for i := 0; i < cfg.OpsPerThread; i++ {
			a := allocator.Malloc(th, cfg.BlockSize)
			for w := 0; w < touch; w++ {
				th.Store(a+mem.Addr(w*8), uint64(i))
			}
			allocator.Free(th, a)
		}
	})

	cycles := engine.MaxClock()
	ops := uint64(cfg.Threads) * uint64(cfg.OpsPerThread)
	return Result{
		Config:     cfg,
		Cycles:     cycles,
		Throughput: float64(ops) / vtime.Seconds(cycles),
		Alloc:      allocator.Stats(),
		FalseShare: cache.TotalStats().FalseShare,
	}, nil
}
