package threadtest

import (
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"
)

func run(t *testing.T, name string, size uint64) Result {
	t.Helper()
	res, err := Run(Config{Allocator: name, Threads: 8, BlockSize: size, OpsPerThread: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("%s/%d: zero throughput", name, size)
	}
	return res
}

func TestAllAllocatorsAllSizes(t *testing.T) {
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		for _, size := range []uint64{16, 64, 256, 2048, 8192} {
			res := run(t, name, size)
			if res.Alloc.Mallocs != res.Alloc.Frees || res.Alloc.Mallocs != 4000 {
				t.Errorf("%s/%d: mallocs %d frees %d", name, size, res.Alloc.Mallocs, res.Alloc.Frees)
			}
		}
	}
}

// Paper Fig. 3 shape: TCMalloc performs poorly at 16 bytes relative to
// its own larger sizes because its incremental central-cache handout
// interleaves adjacent blocks across threads (false sharing).
func TestTCMallocFalseSharingAt16(t *testing.T) {
	at16 := run(t, "tcmalloc", 16)
	at256 := run(t, "tcmalloc", 256)
	if at16.FalseShare == 0 {
		t.Error("tcmalloc at 16B produced no false-sharing misses")
	}
	hoard16 := run(t, "hoard", 16)
	if at16.FalseShare <= hoard16.FalseShare {
		t.Errorf("tcmalloc false sharing (%d) not worse than hoard (%d) at 16B",
			at16.FalseShare, hoard16.FalseShare)
	}
	_ = at256
}

// Paper Fig. 3 shape: Hoard's throughput drops past its 256-byte local
// cache bound, approaching Glibc's lock-per-op level.
func TestHoardDropsPast256(t *testing.T) {
	small := run(t, "hoard", 256)
	big := run(t, "hoard", 512)
	if big.Throughput >= small.Throughput {
		t.Errorf("hoard at 512B (%.0f op/s) not slower than at 256B (%.0f op/s)",
			big.Throughput, small.Throughput)
	}
	if small.Alloc.LockAcquires >= big.Alloc.LockAcquires {
		t.Errorf("hoard lock acquisitions at 256B (%d) not fewer than at 512B (%d)",
			small.Alloc.LockAcquires, big.Alloc.LockAcquires)
	}
}

// Paper Fig. 3 shape: TBB stays flat until ~8KB, then falls off a cliff
// when requests go straight to the OS.
func TestTBBCliffAt8K(t *testing.T) {
	under := run(t, "tbb", 4096)
	over := run(t, "tbb", 8192)
	if over.Throughput > under.Throughput/4 {
		t.Errorf("tbb at 8192B (%.0f op/s) should collapse vs 4096B (%.0f op/s)",
			over.Throughput, under.Throughput)
	}
}

// Glibc locks an arena on every operation: it must record at least one
// lock acquisition per malloc+free.
func TestGlibcAlwaysLocks(t *testing.T) {
	res := run(t, "glibc", 64)
	if res.Alloc.LockAcquires < res.Alloc.Mallocs+res.Alloc.Frees {
		t.Errorf("glibc lock acquisitions %d < ops %d",
			res.Alloc.LockAcquires, res.Alloc.Mallocs+res.Alloc.Frees)
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, "tcmalloc", 16)
	b := run(t, "tcmalloc", 16)
	if a.Cycles != b.Cycles {
		t.Errorf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestDefaultsAndTouchClamping(t *testing.T) {
	// Zero-valued config fields take defaults; TouchWords is clamped to
	// the block size.
	res, err := Run(Config{Allocator: "tbb", TouchWords: 100, BlockSize: 16, OpsPerThread: 10, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc.Mallocs != 20 {
		t.Errorf("mallocs = %d, want 20", res.Alloc.Mallocs)
	}
	if _, err := Run(Config{Allocator: "nosuch"}); err == nil {
		t.Error("unknown allocator accepted")
	}
	def, err := Run(Config{Allocator: "glibc", OpsPerThread: 5})
	if err != nil {
		t.Fatal(err)
	}
	if def.Config.Threads != 8 || def.Config.BlockSize != 16 {
		t.Errorf("defaults not applied: %+v", def.Config)
	}
}
