// Quickstart: build a transactional-memory system with a chosen
// allocator, run concurrent transactions on a shared counter and a
// shared linked list, and inspect the statistics the study is about
// (aborts, allocator lock contention, cache misses).
//
// Run with:
//
//	go run ./examples/quickstart [allocator]
package main

import (
	"fmt"
	"os"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

func main() {
	allocator := "tcmalloc"
	if len(os.Args) > 1 {
		allocator = os.Args[1]
	}
	sys, err := core.NewSystem(core.Options{Allocator: allocator, Threads: 4})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// A shared counter in simulated memory.
	counter := sys.Space.MustMap(4096, 0)

	// A transactional sorted linked list (16-byte nodes from the
	// system allocator, like the paper's microbenchmark).
	var list *txstruct.List
	sys.Seq(func(th *vtime.Thread) {
		sys.Atomic(th, func(tx *stm.Tx) { list = txstruct.NewList(tx) })
	})

	// Four logical threads hammer both structures.
	sys.Run(func(th *vtime.Thread) {
		for i := 0; i < 250; i++ {
			sys.Atomic(th, func(tx *stm.Tx) {
				tx.Store(counter, tx.Load(counter)+1)
			})
			key := int64(th.ID()*1000 + i)
			sys.Atomic(th, func(tx *stm.Tx) { list.Insert(tx, key) })
			if i%3 == 0 {
				sys.Atomic(th, func(tx *stm.Tx) { list.Remove(tx, key) })
			}
		}
	})

	var length int
	sys.Seq(func(th *vtime.Thread) {
		sys.Atomic(th, func(tx *stm.Tx) { length = list.Len(tx) })
	})

	r := sys.Report()
	fmt.Printf("allocator        %s\n", allocator)
	fmt.Printf("counter          %d (want 1000)\n", sys.Space.Load(counter))
	fmt.Printf("list length      %d\n", length)
	fmt.Printf("virtual time     %.3f ms @ 2GHz\n", r.Seconds*1e3)
	fmt.Printf("commits/aborts   %d / %d (%.1f%% aborted)\n",
		r.Tx.Commits, r.Tx.Aborts, r.Tx.AbortRate()*100)
	fmt.Printf("false aborts     %d (stripe sharing / aliasing)\n", r.Tx.FalseAborts)
	fmt.Printf("allocator locks  %d acquired, %d contended\n",
		r.Alloc.LockAcquires, r.Alloc.LockContended)
	fmt.Printf("L1 miss ratio    %.2f%%\n", r.Cache.L1MissRatio()*100)
}
