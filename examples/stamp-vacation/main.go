// STAMP end-to-end: run the vacation travel-reservation benchmark with
// every allocator at a chosen thread count and compare execution time,
// abort behaviour and allocator activity — a miniature of the paper's
// Figure 7 methodology for one application.
//
// Run with:
//
//	go run ./examples/stamp-vacation [threads]
package main

import (
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"
	_ "repro/internal/stamp/vacation"

	"repro/internal/stamp"
)

func main() {
	threads := 4
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil && n >= 1 && n <= 8 {
			threads = n
		}
	}
	fmt.Printf("vacation, %d threads, quick scale\n\n", threads)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "allocator\ttime (ms)\tcommits\taborts\tfalse aborts\ttx allocs\talloc locks\tcontended\tL1 miss")
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		res, err := stamp.Run(stamp.Config{App: "vacation", Allocator: name, Threads: threads})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f%%\n",
			name, res.Seconds*1e3,
			res.Tx.Commits, res.Tx.Aborts, res.Tx.FalseAborts, res.Tx.AllocsInTx,
			res.Alloc.LockAcquires, res.Alloc.LockContended,
			res.L1Miss*100)
	}
	tw.Flush()
	fmt.Println("\nevery run validates: reservation counts match resource usage and all trees stay red-black.")
}
