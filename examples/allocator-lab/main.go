// Allocator lab: watch the four allocator models place blocks in the
// simulated address space and see the placement effects the paper
// builds on — block spacing, arena/superblock alignment, TCMalloc's
// cross-thread adjacent handout, and the resulting ORT stripe sharing.
//
// Run with:
//
//	go run ./examples/allocator-lab
package main

import (
	"fmt"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/threadtest"
	"repro/internal/vtime"
)

func main() {
	fmt.Println("=== 1. Block placement: eight 16-byte allocations per allocator ===")
	for _, name := range alloc.Names() {
		space := mem.NewSpace()
		a := alloc.MustNew(name, space, 2)
		th := vtime.Solo(space, 0, nil)
		fmt.Printf("%-9s:", name)
		var prev mem.Addr
		for i := 0; i < 8; i++ {
			addr := a.Malloc(th, 16)
			if i == 0 {
				fmt.Printf(" %#x", uint64(addr))
			} else {
				fmt.Printf(" %+d", int64(addr)-int64(prev))
			}
			prev = addr
		}
		fmt.Println()
	}
	fmt.Println("glibc steps by 32 (boundary tags); the others pack 16-byte blocks densely")
	fmt.Println("(hoard hands out its refill batch in reverse, still 16 bytes apart).")

	fmt.Println("\n=== 2. ORT stripe sharing under the STM's shift-5 mapping ===")
	for _, name := range alloc.Names() {
		space := mem.NewSpace()
		a := alloc.MustNew(name, space, 1)
		st := stm.New(space, stm.Config{})
		th := vtime.Solo(space, 0, nil)
		var addrs []mem.Addr
		for i := 0; i < 8; i++ {
			addrs = append(addrs, a.Malloc(th, 16))
		}
		shared := 0
		for i := 1; i < len(addrs); i++ {
			if st.OrtIndex(addrs[i]) == st.OrtIndex(addrs[i-1]) {
				shared++
			}
		}
		fmt.Printf("%-9s: %d of 7 consecutive node pairs share a versioned lock\n", name, shared)
	}

	fmt.Println("\n=== 3. TCMalloc's cross-thread adjacent handout (paper Fig. 2) ===")
	{
		space := mem.NewSpace()
		a := alloc.MustNew("tcmalloc", space, 2)
		th0 := vtime.Solo(space, 0, nil)
		th1 := vtime.Solo(space, 1, nil)
		x := a.Malloc(th0, 16)
		v := a.Malloc(th1, 16)
		fmt.Printf("thread 1 gets %#x, thread 2 gets %#x (distance %d, same cache line: %v)\n",
			uint64(x), uint64(v), v-x, uint64(x)>>6 == uint64(v)>>6)
	}

	fmt.Println("\n=== 4. threadtest mini-sweep (paper Fig. 3, 8 threads) ===")
	fmt.Printf("%-9s %12s %12s %12s\n", "allocator", "16B", "256B", "8192B")
	for _, name := range alloc.Names() {
		fmt.Printf("%-9s", name)
		for _, size := range []uint64{16, 256, 8192} {
			res, err := threadtest.Run(threadtest.Config{
				Allocator: name, Threads: 8, BlockSize: size, OpsPerThread: 1000,
			})
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %9.1f M/s", res.Throughput/1e6)
		}
		fmt.Println()
	}
}
