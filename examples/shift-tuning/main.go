// Shift tuning: sweep the STM's lock-mapping shift amount over the
// sorted-linked-list benchmark and watch the optimum move with the
// allocator — the paper's §5.4/Figure 6 finding that the best shift
// value depends on which allocator is loaded.
//
// Run with:
//
//	go run ./examples/shift-tuning
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/intset"
)

func main() {
	shifts := []uint{3, 4, 5, 6}
	fmt.Println("sorted linked list, 8 threads, 60% updates — throughput (tx/s) per ORT shift")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "allocator")
	for _, s := range shifts {
		fmt.Fprintf(tw, "\tshift %d", s)
	}
	fmt.Fprintln(tw, "\tbest")
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		fmt.Fprint(tw, name)
		bestShift, bestThr := uint(0), 0.0
		for _, s := range shifts {
			res, err := intset.Run(intset.Config{
				Kind:         intset.LinkedList,
				Allocator:    name,
				Threads:      8,
				InitialSize:  768,
				KeyRange:     1536,
				UpdatePct:    60,
				OpsPerThread: 120,
				Shift:        s,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(tw, "\t%.0f", res.Throughput)
			if res.Throughput > bestThr {
				bestThr, bestShift = res.Throughput, s
			}
		}
		fmt.Fprintf(tw, "\t%d\n", bestShift)
	}
	tw.Flush()
	fmt.Println("\nthe paper's point: with 16-byte nodes (hoard/tbb/tcmalloc) a smaller shift")
	fmt.Println("separates neighbouring nodes into distinct stripes and can win; with glibc's")
	fmt.Println("32-byte chunks shift 5 is already conflict-free, so smaller shifts only add")
	fmt.Println("ORT cache pressure.")
}
