package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// STM algorithm variant, the ORT shift amount, the engine's scheduling
// quantum, and the cache model itself.

// BenchmarkAblationSTMDesign compares the paper's ETL write-back STM
// against write-through ETL and TL2-style commit-time locking on the
// red-black-tree workload.
func BenchmarkAblationSTMDesign(b *testing.B) {
	for _, d := range []stm.Design{stm.ETLWriteBack, stm.ETLWriteThrough, stm.CTL} {
		for _, name := range []string{"glibc", "tcmalloc"} {
			b.Run(fmt.Sprintf("%s/%s", d, name), func(b *testing.B) {
				var thr, abort float64
				for i := 0; i < b.N; i++ {
					res, err := intset.Run(intset.Config{
						Kind: intset.RBTree, Allocator: name, Threads: 8,
						InitialSize: 1024, KeyRange: 2048, UpdatePct: 60,
						OpsPerThread: 250, Design: d,
					})
					if err != nil {
						b.Fatal(err)
					}
					thr = res.Throughput
					abort = res.Tx.AbortRate() * 100
				}
				b.ReportMetric(thr, "vtx/s")
				b.ReportMetric(abort, "abort%")
			})
		}
	}
}

// BenchmarkAblationShift sweeps the ORT shift from 3 to 7 on the
// linked list (generalizing Fig. 6's 4-vs-5 comparison).
func BenchmarkAblationShift(b *testing.B) {
	for _, shift := range []uint{3, 4, 5, 6, 7} {
		for _, name := range []string{"glibc", "hoard"} {
			b.Run(fmt.Sprintf("shift=%d/%s", shift, name), func(b *testing.B) {
				var thr float64
				for i := 0; i < b.N; i++ {
					res, err := intset.Run(intset.Config{
						Kind: intset.LinkedList, Allocator: name, Threads: 8,
						InitialSize: 512, KeyRange: 1024, UpdatePct: 60,
						OpsPerThread: 100, Shift: shift,
					})
					if err != nil {
						b.Fatal(err)
					}
					thr = res.Throughput
				}
				b.ReportMetric(thr, "vtx/s")
			})
		}
	}
}

// BenchmarkAblationQuantum measures the virtual-time engine's
// sensitivity to its scheduling quantum: results (modelled cycles) must
// be stable across reasonable quanta while host cost varies.
func BenchmarkAblationQuantum(b *testing.B) {
	for _, q := range []uint64{53, 199, 997, 4999} {
		b.Run(fmt.Sprintf("quantum=%d", q), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				space := mem.NewSpace()
				e := vtime.NewEngine(space, 8, vtime.Config{Quantum: q})
				s := stm.New(space, stm.Config{})
				counter := space.MustMap(4096, 0)
				e.Run(func(th *vtime.Thread) {
					for j := 0; j < 300; j++ {
						s.Atomic(th, func(tx *stm.Tx) {
							tx.Store(counter, tx.Load(counter)+1)
						})
					}
				})
				cycles = float64(e.MaxClock())
			}
			b.ReportMetric(cycles, "vcycles")
		})
	}
}

// BenchmarkAblationCacheModel quantifies what the cache hierarchy model
// costs the host and contributes to the modelled time, on an identical
// workload with the model on and off.
func BenchmarkAblationCacheModel(b *testing.B) {
	for _, enabled := range []bool{true, false} {
		name := "on"
		if !enabled {
			name = "off"
		}
		b.Run("cache="+name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				sys := core.MustNewSystem(core.Options{
					Allocator: "tbb", Threads: 8, DisableCacheModel: !enabled,
				})
				var list *txstruct.List
				sys.Seq(func(th *vtime.Thread) {
					sys.Atomic(th, func(tx *stm.Tx) { list = txstruct.NewList(tx) })
				})
				sys.ResetClocks()
				sys.Run(func(th *vtime.Thread) {
					for j := 0; j < 150; j++ {
						key := int64(th.ID()*1000 + j)
						sys.Atomic(th, func(tx *stm.Tx) { list.Insert(tx, key) })
					}
				})
				cycles = float64(sys.Engine.MaxClock())
			}
			b.ReportMetric(cycles, "vcycles")
		})
	}
}
