package repro

import (
	"testing"

	"repro/internal/intset"
	"repro/internal/stamp"
	"repro/internal/threadtest"
)

// These integration tests pin the paper's qualitative findings — the
// "shapes" the reproduction must preserve — at test-friendly scales.
// Quantitative tables live in EXPERIMENTS.md; these tests keep the
// shapes from regressing.

// Paper Fig. 3: every allocator's threadtest signature.
func TestShapeFig3Signatures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	run := func(name string, size uint64) float64 {
		res, err := threadtest.Run(threadtest.Config{
			Allocator: name, Threads: 8, BlockSize: size, OpsPerThread: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	// TCMalloc is its own worst at 16B.
	if t16, t256 := run("tcmalloc", 16), run("tcmalloc", 256); t16 >= t256 {
		t.Errorf("tcmalloc: 16B (%.0f) not slower than 256B (%.0f)", t16, t256)
	}
	// Hoard collapses past 256B.
	if h256, h512 := run("hoard", 256), run("hoard", 512); h512 >= h256/2 {
		t.Errorf("hoard: 512B (%.0f) did not collapse vs 256B (%.0f)", h512, h256)
	}
	// TBB collapses at 8KB.
	if b4k, b8k := run("tbb", 4096), run("tbb", 8192); b8k >= b4k/10 {
		t.Errorf("tbb: 8KB (%.0f) did not collapse vs 4KB (%.0f)", b8k, b4k)
	}
	// Glibc is the slowest small-block allocator (lock per op).
	if g, h := run("glibc", 64), run("hoard", 64); g >= h {
		t.Errorf("glibc 64B (%.0f) not slower than hoard (%.0f)", g, h)
	}
}

// Paper Table 4 at its 2-thread point: Glibc trades aborts for misses.
func TestShapeTab4GlibcTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	run := func(name string) (abort, l1 float64) {
		res, err := intset.Run(intset.Config{
			Kind: intset.LinkedList, Allocator: name, Threads: 2,
			InitialSize: 1024, KeyRange: 2048, UpdatePct: 60, OpsPerThread: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Tx.AbortRate(), res.L1Miss
	}
	ga, gl := run("glibc")
	for _, other := range []string{"hoard", "tbb", "tcmalloc"} {
		oa, ol := run(other)
		if ga >= oa {
			t.Errorf("glibc abort rate %.3f not below %s's %.3f", ga, other, oa)
		}
		if gl <= ol {
			t.Errorf("glibc L1 miss %.4f not above %s's %.4f", gl, other, ol)
		}
	}
}

// Paper Fig. 6: shift 4 helps the 16-byte allocators at high thread
// counts and does not help Glibc.
func TestShapeFig6ShiftInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	run := func(name string, shift uint) float64 {
		res, err := intset.Run(intset.Config{
			Kind: intset.LinkedList, Allocator: name, Threads: 8,
			InitialSize: 768, KeyRange: 1536, UpdatePct: 60, OpsPerThread: 120,
			Shift: shift,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	// For hoard, shift 4 removes the node-pair stripe sharing: its
	// relative gain must exceed glibc's (which has nothing to gain).
	hoardGain := run("hoard", 4)/run("hoard", 5) - 1
	glibcGain := run("glibc", 4)/run("glibc", 5) - 1
	if hoardGain <= glibcGain {
		t.Errorf("shift-4 gain: hoard %+.3f not above glibc %+.3f", hoardGain, glibcGain)
	}
}

// Paper §6/Table 6 headline: Yada is the allocator blow-up case, with
// Glibc clearly worst.
func TestShapeYadaGlibcWorst(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	run := func(name string) float64 {
		res, err := stamp.Run(stamp.Config{App: "yada", Allocator: name, Threads: 8, Scale: stamp.Ref})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	g := run("glibc")
	for _, other := range []string{"hoard", "tbb", "tcmalloc"} {
		if o := run(other); g <= o {
			t.Errorf("yada: glibc (%.4fs) not slower than %s (%.4fs)", g, other, o)
		}
	}
}

// Paper Table 7: the tx-object cache is worth more on Glibc than on
// TCMalloc for the churn-heavy app.
func TestShapeTab7CachingHelpsGlibcMost(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	run := func(name string, cached bool) float64 {
		res, err := stamp.Run(stamp.Config{
			App: "yada", Allocator: name, Threads: 8, Scale: stamp.Ref, CacheTx: cached,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	glibcGain := 1 - run("glibc", true)/run("glibc", false)
	tcmGain := 1 - run("tcmalloc", true)/run("tcmalloc", false)
	if glibcGain <= tcmGain {
		t.Errorf("tx-cache gain: glibc %+.3f not above tcmalloc %+.3f", glibcGain, tcmGain)
	}
}

// Control applications must stay allocator-insensitive (paper: < 5%).
func TestShapeControlAppsInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	for _, app := range []string{"kmeans", "ssca2"} {
		var lo, hi float64
		for _, name := range allocators {
			res, err := stamp.Run(stamp.Config{App: app, Allocator: name, Threads: 8})
			if err != nil {
				t.Fatal(err)
			}
			s := res.Seconds
			if lo == 0 || s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if spread := (hi - lo) / lo; spread > 0.10 {
			t.Errorf("%s: allocator spread %.1f%% exceeds 10%%", app, spread*100)
		}
	}
}
