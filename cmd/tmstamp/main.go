// Command tmstamp runs a single STAMP application on the simulated
// transactional-memory stack, like the original suite's per-application
// binaries.
//
// Usage:
//
//	tmstamp -app yada -alloc glibc -threads 8 [-scale ref] [-cachetx]
//	        [-shift 5] [-profile] [-seed 1]
//
// It prints the modelled execution time, transaction statistics,
// allocator activity, cache behaviour and (with -profile) the Table
// 5-style allocation characterization.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"
	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"

	"repro/internal/stamp"
	"repro/internal/vtime"
)

func main() {
	var (
		app     = flag.String("app", "", "application (required); one of: bayes genome intruder kmeans labyrinth ssca2 vacation yada")
		alloc   = flag.String("alloc", "glibc", "allocator: glibc hoard tbb tcmalloc")
		threads = flag.Int("threads", 1, "logical threads (1..8)")
		scale   = flag.String("scale", "quick", "workload scale: quick or ref")
		variant = flag.String("variant", "high", "contention variant for kmeans/vacation: high or low")
		shift   = flag.Uint("shift", 0, "ORT shift amount (0 = default 5)")
		cacheTx = flag.Bool("cachetx", false, "enable the STM-level tx-object cache (paper §6.2)")
		profile = flag.Bool("profile", false, "print the Table 5 allocation profile")
		seed    = flag.Uint64("seed", 0, "workload seed (0 = default)")
	)
	flag.Parse()
	if *app == "" {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\navailable apps:", stamp.Names())
		os.Exit(2)
	}
	sc := stamp.Quick
	if *scale == "ref" || *scale == "full" {
		sc = stamp.Ref
	}
	va := stamp.HighContention
	if *variant == "low" {
		va = stamp.LowContention
	}
	res, err := stamp.Run(stamp.Config{
		App:       *app,
		Allocator: *alloc,
		Threads:   *threads,
		Scale:     sc,
		Variant:   va,
		Shift:     *shift,
		CacheTx:   *cacheTx,
		Profile:   *profile,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s / %s / %d thread(s) / %s scale — validation OK\n\n", *app, *alloc, *threads, *scale)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "execution time\t%.4f ms (modelled, parallel phase)\n", res.Seconds*1e3)
	fmt.Fprintf(tw, "init time\t%.4f ms\n", vtime.Seconds(res.InitCycles)*1e3)
	fmt.Fprintf(tw, "transactions\t%d commits, %d aborts (%.1f%%), %d false aborts\n",
		res.Tx.Commits, res.Tx.Aborts, res.Tx.AbortRate()*100, res.Tx.FalseAborts)
	fmt.Fprintf(tw, "abort reasons\tlocked=%d version=%d validation=%d explicit=%d\n",
		res.Tx.ByReason[0], res.Tx.ByReason[1], res.Tx.ByReason[2], res.Tx.ByReason[3])
	fmt.Fprintf(tw, "tx sets\tmax read %d, max write %d, worst retries %d\n",
		res.Tx.MaxReadSet, res.Tx.MaxWriteSet, res.Tx.MaxRetries)
	fmt.Fprintf(tw, "tx memory\t%d mallocs, %d frees inside transactions\n",
		res.Tx.AllocsInTx, res.Tx.FreesInTx)
	fmt.Fprintf(tw, "allocator\t%d mallocs, %d frees, %d lock acquisitions (%d contended), %d remote frees, %d OS maps\n",
		res.Alloc.Mallocs, res.Alloc.Frees, res.Alloc.LockAcquires, res.Alloc.LockContended,
		res.Alloc.RemoteFrees, res.Alloc.OSMaps)
	fmt.Fprintf(tw, "cache\t%.2f%% L1D miss, %d coherence misses, %d false-sharing misses\n",
		res.L1Miss*100, res.Cache.CohMisses, res.Cache.FalseShare)
	tw.Flush()

	if res.Profile != nil {
		fmt.Println("\nallocation profile (Table 5 style):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "region\t<=16\t<=32\t<=48\t<=64\t<=96\t<=128\t<=256\t>256\t#mallocs\t#frees\tbytes")
		for _, reg := range []stamp.Region{stamp.RegionSeq, stamp.RegionPar, stamp.RegionTx} {
			fmt.Fprintf(tw, "%s", reg)
			for b := 0; b < 8; b++ {
				fmt.Fprintf(tw, "\t%d", res.Profile.Counts[reg][b])
			}
			fmt.Fprintf(tw, "\t%d\t%d\t%d\n", res.Profile.Mallocs[reg], res.Profile.Frees[reg], res.Profile.Bytes[reg])
		}
		tw.Flush()
	}
}
