// Command tmstamp runs a single STAMP application on the simulated
// transactional-memory stack, like the original suite's per-application
// binaries.
//
// Usage:
//
//	tmstamp -app yada -alloc glibc -threads 8 [-scale ref] [-cachetx]
//	        [-shift 5] [-alloc-profile] [-profile FILE] [-seed 1] [-cache DIR]
//
// It prints the modelled execution time, transaction statistics,
// allocator activity, cache behaviour and (with -alloc-profile) the
// Table 5-style allocation characterization; -profile FILE writes the
// virtual-cycle attribution profile. The run executes as one sweep
// cell, so -cache memoizes it by configuration hash; tracing (-trace /
// -metrics) and profiling force a live run, since a cache hit cannot
// replay events.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"
	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"

	"repro/cmd/internal/cliflags"
	"repro/internal/heapscope"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/sweep"
	"repro/internal/vtime"
)

func main() {
	var (
		app     = flag.String("app", "", "application (required); one of: bayes genome intruder kmeans labyrinth ssca2 vacation yada")
		alloc   = flag.String("alloc", "glibc", "allocator: glibc hoard tbb tcmalloc")
		threads = flag.Int("threads", 1, "logical threads (1..8)")
		scale   = flag.String("scale", "quick", "workload scale: quick or ref")
		variant = flag.String("variant", "high", "contention variant for kmeans/vacation: high or low")
		shift   = flag.Uint("shift", 0, "ORT shift amount (0 = default 5)")
		cacheTx = flag.Bool("cachetx", false, "deprecated alias for -pool cache (paper §6.2 tx-object caching)")
		profile = flag.Bool("alloc-profile", false, "print the Table 5 allocation profile")
		seed    = flag.Uint64("seed", 0, "workload seed (0 = default)")
		raceSim = flag.Bool("race-sim", false, "attach the happens-before race checker to the run")
		conf    = flag.Bool("conflict", false, "attach the abort-forensics observatory to the run")
	)
	rob := cliflags.AddRobustness(flag.CommandLine)
	pool := cliflags.AddPool(flag.CommandLine)
	sw := cliflags.AddSweep(flag.CommandLine)
	outp := cliflags.AddOutput(flag.CommandLine)
	cliflags.AddSanitize(flag.CommandLine)
	pr := cliflags.AddProfile(flag.CommandLine)
	hp := cliflags.AddHeap(flag.CommandLine)
	flag.Parse()
	if *app == "" {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\navailable apps:", stamp.Names())
		os.Exit(2)
	}
	sc := stamp.Quick
	if *scale == "ref" || *scale == "full" {
		sc = stamp.Ref
	}
	va := stamp.HighContention
	if *variant == "low" {
		va = stamp.LowContention
	}
	rec := outp.NewRecorder()
	cfg := stamp.Config{
		App:       *app,
		Allocator: *alloc,
		Threads:   *threads,
		Scale:     sc,
		Variant:   va,
		Shift:     *shift,
		CacheTx:   *cacheTx,
		Pool:      *pool,
		Profile:   *profile,
		Seed:      *seed,
		CM:        rob.CM,
		RetryCap:  rob.RetryCap,
		Fault:     rob.Fault,
		Deadline:  rob.Deadline,
		Pmem:      rob.Pmem,
		Crash:     rob.Crash,
		Race:      *raceSim,
		Conflict:  *conf,
	}

	cache, err := sw.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil || pr.Enabled() || hp.Enabled() {
		cache = nil // a cache hit could not replay the trace, profile or heap series
	}
	if rob.Crash != "" {
		cache = nil // a crash cell's verdict must come from recovery actually running
	}
	if *raceSim {
		cache = nil // a race verdict must come from the checker observing the execution
	}
	if *conf {
		cache = nil // forensics describe an actual execution, never a replayed record
	}
	var pp *prof.Profiler
	if pr.Enabled() {
		pp = prof.New()
		pp.SetRecorder(rec)
	}
	var hc *heapscope.Collector
	if hp.Enabled() {
		hc = heapscope.New(hp.Cadence)
	}
	spec, err := json.Marshal(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	key := fmt.Sprintf("cli/stamp/%s/%s/t%d/sc%d/v%d/sh%d/c%v/p%v",
		*app, *alloc, *threads, sc, va, *shift, *cacheTx, *profile)
	if *pool != stm.PoolNone {
		key += "/p" + pool.String()
	}
	cells := []sweep.Cell{{
		Key:  key,
		Spec: spec,
		Seed: *seed,
		Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
			c := cfg
			c.Obs = rec
			c.Prof = pp
			c.Heap = hc
			res, err := stamp.Run(c)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			var d *obs.Delta
			if rec != nil {
				d = rec.Delta()
			}
			var pf *prof.Profile
			if pp != nil {
				pf = pp.Profile()
				pf.Label = key
			}
			var sr *heapscope.Series
			if hc != nil {
				sr = hc.Series(key)
			}
			return res, d, pf, sr, nil
		},
	}}
	sched := &sweep.Scheduler{Jobs: sw.Jobs, Cache: cache}
	outs, stats := sched.Run(cells)
	out := outs[0]
	if out.Err != nil {
		fmt.Fprintln(os.Stderr, out.Err)
		os.Exit(1)
	}
	if out.Cached {
		fmt.Fprintf(os.Stderr, "cached result (%s, hash %.12s)\n", sw.Dir, out.Hash)
	}
	var res stamp.Result
	if err := json.Unmarshal(out.Payload, &res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if out.Profile != nil {
		if err := pr.Write(out.Profile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var heapSet *heapscope.Set
	if out.Heap != nil {
		heapSet = heapscope.NewSet("stamp/" + *app)
		heapSet.Add(out.Heap)
		if err := hp.Write(heapSet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch res.Status {
	case "", obs.StatusOK:
		fmt.Printf("%s / %s / %d thread(s) / %s scale — validation OK\n\n", *app, *alloc, *threads, *scale)
	default:
		fmt.Printf("%s / %s / %d thread(s) / %s scale — %s: %s\n\n",
			*app, *alloc, *threads, *scale, res.Status, res.Failure)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "execution time\t%.4f ms (modelled, parallel phase)\n", res.Seconds*1e3)
	fmt.Fprintf(tw, "init time\t%.4f ms\n", vtime.Seconds(res.InitCycles)*1e3)
	fmt.Fprintf(tw, "transactions\t%d commits, %d aborts (%.1f%%), %d false aborts\n",
		res.Tx.Commits, res.Tx.Aborts, res.Tx.AbortRate()*100, res.Tx.FalseAborts)
	reasons := make([]string, 0, stm.AbortReasonCount)
	for r := 0; r < stm.AbortReasonCount; r++ {
		reasons = append(reasons, fmt.Sprintf("%s=%d", stm.AbortReason(r), res.Tx.ByReason[r]))
	}
	fmt.Fprintf(tw, "abort reasons\t%s\n", strings.Join(reasons, " "))
	fmt.Fprintf(tw, "tx sets\tmax read %d, max write %d, worst retries %d\n",
		res.Tx.MaxReadSet, res.Tx.MaxWriteSet, res.Tx.MaxRetries)
	fmt.Fprintf(tw, "tx memory\t%d mallocs, %d frees inside transactions\n",
		res.Tx.AllocsInTx, res.Tx.FreesInTx)
	if p := res.Pool; p != nil {
		fmt.Fprintf(tw, "pooling\t%s: %d hits, %d misses, %d returns (%d held at end)\n",
			p.Discipline, p.Hits, p.Misses, p.Returns, p.Held)
	}
	if res.Tx.Irrevocables > 0 || res.Tx.BackoffCycles > 0 || res.Alloc.FailedMallocs > 0 {
		fmt.Fprintf(tw, "robustness\t%d irrevocable fallbacks, %d backoff cycles, worst streak %d aborts, %d failed mallocs\n",
			res.Tx.Irrevocables, res.Tx.BackoffCycles, res.Tx.MaxConsecAborts, res.Alloc.FailedMallocs)
	}
	fmt.Fprintf(tw, "allocator\t%d mallocs, %d frees, %d lock acquisitions (%d contended), %d remote frees, %d OS maps\n",
		res.Alloc.Mallocs, res.Alloc.Frees, res.Alloc.LockAcquires, res.Alloc.LockContended,
		res.Alloc.RemoteFrees, res.Alloc.OSMaps)
	fmt.Fprintf(tw, "cache\t%.2f%% L1D miss, %d coherence misses, %d false-sharing misses\n",
		res.L1Miss*100, res.Cache.CohMisses, res.Cache.FalseShare)
	if r := res.Recovery; r != nil {
		if r.Crashed {
			fmt.Fprintf(tw, "durability\tcrash at cycle %d (%s phase); recovery %s: %d logs replayed, %d torn, %d/%d meta words repaired\n",
				r.CrashCycle, r.CrashPhase, r.Verdict, r.Replayed, r.TornLogs, r.TornMeta, r.MetaWords)
		} else {
			fmt.Fprintf(tw, "durability\t%d flushes, %d fences, %d log appends, %d metadata records\n",
				r.Flushes, r.Fences, r.LogAppends, r.MetaRecs)
		}
	}
	if r := res.Race; r != nil {
		if r.Findings > 0 {
			fmt.Fprintf(tw, "race\t%d finding(s) over %d blocks / %d words; first: %s\n",
				r.Findings, r.Blocks, r.Words, r.First)
		} else {
			fmt.Fprintf(tw, "race\tclean: %d events over %d blocks / %d words\n",
				r.Events, r.Blocks, r.Words)
		}
	}
	if c := res.Conflict; c != nil {
		fmt.Fprintf(tw, "conflicts\t%d aborts dissected: %d true, %d false, %d alias, %d metadata, %d other; %d wasted cycles\n",
			c.Events, c.TrueSharing, c.FalseSharing, c.StripeAlias, c.Metadata, c.Other, c.WastedCycles)
		if c.First != "" {
			fmt.Fprintf(tw, "first\t%s\n", c.First)
		}
	}
	tw.Flush()

	if res.Profile != nil {
		fmt.Println("\nallocation profile (Table 5 style):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "region\t<=16\t<=32\t<=48\t<=64\t<=96\t<=128\t<=256\t>256\t#mallocs\t#frees\tbytes")
		for _, reg := range []stamp.Region{stamp.RegionSeq, stamp.RegionPar, stamp.RegionTx} {
			fmt.Fprintf(tw, "%s", reg)
			for b := 0; b < 8; b++ {
				fmt.Fprintf(tw, "\t%d", res.Profile.Counts[reg][b])
			}
			fmt.Fprintf(tw, "\t%d\t%d\t%d\n", res.Profile.Mallocs[reg], res.Profile.Frees[reg], res.Profile.Bytes[reg])
		}
		tw.Flush()
	}

	if outp.JSON != "" {
		record := obs.NewRunRecord("stamp/" + *app)
		record.Title = fmt.Sprintf("%s on %s, %d thread(s), %s scale", *app, *alloc, *threads, *scale)
		record.Status = res.Status
		record.Failure = res.Failure
		record.Config = obs.RunConfig{
			Seed: *seed,
			Extra: map[string]string{
				"app":      *app,
				"alloc":    *alloc,
				"threads":  fmt.Sprintf("%d", *threads),
				"scale":    *scale,
				"variant":  *variant,
				"cachetx":  fmt.Sprintf("%v", *cacheTx),
				"pool":     pool.String(),
				"cm":       rob.CM.String(),
				"retrycap": fmt.Sprintf("%d", rob.RetryCap),
				"fault":    rob.Fault,
				"deadline": fmt.Sprintf("%d", rob.Deadline),
			},
		}
		record.Sweep = &obs.SweepInfo{
			CellSet:  sweep.CellSetHash(cells),
			Cells:    stats.Cells,
			Executed: stats.Executed,
			Cached:   stats.Cached,
			Jobs:     sw.Jobs,
		}
		if out.Profile != nil {
			record.Profile = out.Profile.Info()
		}
		if heapSet != nil {
			record.Heap = heapSet.Info()
		}
		if res.Recovery != nil {
			record.Recovery = res.Recovery
		}
		if res.Pool != nil {
			record.Pool = res.Pool
		}
		if res.Race != nil {
			record.Race = res.Race
		}
		if res.Conflict != nil {
			record.Conflict = res.Conflict
		}
		record.Tables = []obs.Table{{
			Title:   "Summary",
			Columns: []string{"Metric", "Value"},
			Rows: [][]string{
				{"execution time (ms)", fmt.Sprintf("%.4f", res.Seconds*1e3)},
				{"init time (ms)", fmt.Sprintf("%.4f", vtime.Seconds(res.InitCycles)*1e3)},
				{"commits", fmt.Sprintf("%d", res.Tx.Commits)},
				{"aborts", fmt.Sprintf("%d", res.Tx.Aborts)},
				{"false aborts", fmt.Sprintf("%d", res.Tx.FalseAborts)},
				{"L1 miss", fmt.Sprintf("%.4f", res.L1Miss)},
			},
		}}
		record.Attach(rec)
		if err := cliflags.WriteTo(outp.JSON, record.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := outp.WriteMetrics(rec, stats.WritePrometheus); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := outp.WriteTrace(rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// A captured panic is a real failure for scripting purposes, but only
	// after every requested artifact has been written: a failed run still
	// leaves a valid record behind.
	if res.Status == obs.StatusFailed {
		os.Exit(1)
	}
}
