// Command tmstamp runs a single STAMP application on the simulated
// transactional-memory stack, like the original suite's per-application
// binaries.
//
// Usage:
//
//	tmstamp -app yada -alloc glibc -threads 8 [-scale ref] [-cachetx]
//	        [-shift 5] [-profile] [-seed 1]
//
// It prints the modelled execution time, transaction statistics,
// allocator activity, cache behaviour and (with -profile) the Table
// 5-style allocation characterization.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"
	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"

	"repro/internal/obs"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func main() {
	var (
		app      = flag.String("app", "", "application (required); one of: bayes genome intruder kmeans labyrinth ssca2 vacation yada")
		alloc    = flag.String("alloc", "glibc", "allocator: glibc hoard tbb tcmalloc")
		threads  = flag.Int("threads", 1, "logical threads (1..8)")
		scale    = flag.String("scale", "quick", "workload scale: quick or ref")
		variant  = flag.String("variant", "high", "contention variant for kmeans/vacation: high or low")
		shift    = flag.Uint("shift", 0, "ORT shift amount (0 = default 5)")
		cacheTx  = flag.Bool("cachetx", false, "enable the STM-level tx-object cache (paper §6.2)")
		profile  = flag.Bool("profile", false, "print the Table 5 allocation profile")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = default)")
		trace    = flag.String("trace", "", "write the event trace here: Chrome trace-event JSON, or JSON Lines if the path ends in .jsonl")
		metrics  = flag.String("metrics", "", "write a Prometheus text-format metrics snapshot here")
		jsonOut  = flag.String("json", "", "write a machine-readable run record (JSON) here")
		cmName   = flag.String("cm", "", "contention manager: suicide (default), backoff, karma, aggressive")
		retryCap = flag.Uint64("retry-cap", 0, "aborts before the irrevocable fallback (0 = default)")
		faultStr = flag.String("fault", "", "fault plan, e.g. 'oom@10x2,lat%5:300,stall@t1:50000:20000,quota@1048576'")
		deadline = flag.Uint64("deadline", 0, "virtual-cycle watchdog bound per phase (0 = none)")
	)
	flag.Parse()
	if *app == "" {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\navailable apps:", stamp.Names())
		os.Exit(2)
	}
	sc := stamp.Quick
	if *scale == "ref" || *scale == "full" {
		sc = stamp.Ref
	}
	va := stamp.HighContention
	if *variant == "low" {
		va = stamp.LowContention
	}
	var rec *obs.Recorder
	if *trace != "" || *metrics != "" || *jsonOut != "" {
		rec = obs.New(obs.Config{})
	}
	cm, err := stm.ParseCM(*cmName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := stamp.Run(stamp.Config{
		App:       *app,
		Allocator: *alloc,
		Threads:   *threads,
		Scale:     sc,
		Variant:   va,
		Shift:     *shift,
		CacheTx:   *cacheTx,
		Profile:   *profile,
		Seed:      *seed,
		Obs:       rec,
		CM:        cm,
		RetryCap:  *retryCap,
		Fault:     *faultStr,
		Deadline:  *deadline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch res.Status {
	case "", obs.StatusOK:
		fmt.Printf("%s / %s / %d thread(s) / %s scale — validation OK\n\n", *app, *alloc, *threads, *scale)
	default:
		fmt.Printf("%s / %s / %d thread(s) / %s scale — %s: %s\n\n",
			*app, *alloc, *threads, *scale, res.Status, res.Failure)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "execution time\t%.4f ms (modelled, parallel phase)\n", res.Seconds*1e3)
	fmt.Fprintf(tw, "init time\t%.4f ms\n", vtime.Seconds(res.InitCycles)*1e3)
	fmt.Fprintf(tw, "transactions\t%d commits, %d aborts (%.1f%%), %d false aborts\n",
		res.Tx.Commits, res.Tx.Aborts, res.Tx.AbortRate()*100, res.Tx.FalseAborts)
	reasons := make([]string, 0, stm.AbortReasonCount)
	for r := 0; r < stm.AbortReasonCount; r++ {
		reasons = append(reasons, fmt.Sprintf("%s=%d", stm.AbortReason(r), res.Tx.ByReason[r]))
	}
	fmt.Fprintf(tw, "abort reasons\t%s\n", strings.Join(reasons, " "))
	fmt.Fprintf(tw, "tx sets\tmax read %d, max write %d, worst retries %d\n",
		res.Tx.MaxReadSet, res.Tx.MaxWriteSet, res.Tx.MaxRetries)
	fmt.Fprintf(tw, "tx memory\t%d mallocs, %d frees inside transactions\n",
		res.Tx.AllocsInTx, res.Tx.FreesInTx)
	if res.Tx.Irrevocables > 0 || res.Tx.BackoffCycles > 0 || res.Alloc.FailedMallocs > 0 {
		fmt.Fprintf(tw, "robustness\t%d irrevocable fallbacks, %d backoff cycles, worst streak %d aborts, %d failed mallocs\n",
			res.Tx.Irrevocables, res.Tx.BackoffCycles, res.Tx.MaxConsecAborts, res.Alloc.FailedMallocs)
	}
	fmt.Fprintf(tw, "allocator\t%d mallocs, %d frees, %d lock acquisitions (%d contended), %d remote frees, %d OS maps\n",
		res.Alloc.Mallocs, res.Alloc.Frees, res.Alloc.LockAcquires, res.Alloc.LockContended,
		res.Alloc.RemoteFrees, res.Alloc.OSMaps)
	fmt.Fprintf(tw, "cache\t%.2f%% L1D miss, %d coherence misses, %d false-sharing misses\n",
		res.L1Miss*100, res.Cache.CohMisses, res.Cache.FalseShare)
	tw.Flush()

	if res.Profile != nil {
		fmt.Println("\nallocation profile (Table 5 style):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "region\t<=16\t<=32\t<=48\t<=64\t<=96\t<=128\t<=256\t>256\t#mallocs\t#frees\tbytes")
		for _, reg := range []stamp.Region{stamp.RegionSeq, stamp.RegionPar, stamp.RegionTx} {
			fmt.Fprintf(tw, "%s", reg)
			for b := 0; b < 8; b++ {
				fmt.Fprintf(tw, "\t%d", res.Profile.Counts[reg][b])
			}
			fmt.Fprintf(tw, "\t%d\t%d\t%d\n", res.Profile.Mallocs[reg], res.Profile.Frees[reg], res.Profile.Bytes[reg])
		}
		tw.Flush()
	}

	if *jsonOut != "" {
		record := &obs.RunRecord{
			Schema:     obs.RunRecordSchema,
			Experiment: "stamp/" + *app,
			Title:      fmt.Sprintf("%s on %s, %d thread(s), %s scale", *app, *alloc, *threads, *scale),
			Status:     res.Status,
			Failure:    res.Failure,
			Config: obs.RunConfig{
				Seed: *seed,
				Extra: map[string]string{
					"app":      *app,
					"alloc":    *alloc,
					"threads":  fmt.Sprintf("%d", *threads),
					"scale":    *scale,
					"variant":  *variant,
					"cachetx":  fmt.Sprintf("%v", *cacheTx),
					"cm":       cm.String(),
					"retrycap": fmt.Sprintf("%d", *retryCap),
					"fault":    *faultStr,
					"deadline": fmt.Sprintf("%d", *deadline),
				},
			},
			Tables: []obs.Table{{
				Title:   "Summary",
				Columns: []string{"Metric", "Value"},
				Rows: [][]string{
					{"execution time (ms)", fmt.Sprintf("%.4f", res.Seconds*1e3)},
					{"init time (ms)", fmt.Sprintf("%.4f", vtime.Seconds(res.InitCycles)*1e3)},
					{"commits", fmt.Sprintf("%d", res.Tx.Commits)},
					{"aborts", fmt.Sprintf("%d", res.Tx.Aborts)},
					{"false aborts", fmt.Sprintf("%d", res.Tx.FalseAborts)},
					{"L1 miss", fmt.Sprintf("%.4f", res.L1Miss)},
				},
			}},
		}
		record.Attach(rec)
		if err := writeTo(*jsonOut, record.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metrics != "" {
		if err := writeTo(*metrics, rec.WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *trace != "" {
		write := rec.WriteChromeTrace
		if strings.HasSuffix(*trace, ".jsonl") {
			write = rec.WriteJSONL
		}
		if err := writeTo(*trace, write); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// A captured panic is a real failure for scripting purposes, but only
	// after every requested artifact has been written: a failed run still
	// leaves a valid record behind.
	if res.Status == obs.StatusFailed {
		os.Exit(1)
	}
}

// writeTo creates path (and its directory) and streams fn into it.
func writeTo(path string, fn func(io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
