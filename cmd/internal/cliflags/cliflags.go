// Package cliflags is the shared flag surface of the tm* binaries:
// the robustness-policy group (-cm, -retry-cap, -fault, -deadline), the
// sweep group (-jobs, -cache, -no-cache) and the artifact-output group
// (-trace, -metrics, -json). Flag values that name things — contention
// managers, fault plans — are validated while flags parse, so a typo
// fails immediately with the allowed names instead of minutes into a
// sweep.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/sweep"
)

// Robustness is the parsed policy group.
type Robustness struct {
	CM       stm.CM
	RetryCap uint64
	Fault    string
	Deadline uint64
	Pmem     bool
	Crash    string
}

// AddRobustness registers -cm, -retry-cap, -fault and -deadline on fs.
// -cm and -fault validate as they parse.
func AddRobustness(fs *flag.FlagSet) *Robustness {
	r := &Robustness{}
	fs.Func("cm", "contention manager: "+strings.Join(stm.CMNames(), ", "), func(v string) error {
		cm, err := stm.ParseCM(v)
		if err != nil {
			return fmt.Errorf("unknown contention manager %q (allowed: %s)", v, strings.Join(stm.CMNames(), ", "))
		}
		r.CM = cm
		return nil
	})
	fs.Uint64Var(&r.RetryCap, "retry-cap", 0, "aborts before the irrevocable fallback (0 = default)")
	fs.Func("fault", "fault plan injected into every workload (internal/fault grammar)", func(v string) error {
		if _, err := fault.Parse(v, 1); err != nil {
			return err
		}
		r.Fault = v
		return nil
	})
	fs.Uint64Var(&r.Deadline, "deadline", 0, "virtual-cycle watchdog bound per workload phase (0 = none)")
	fs.BoolVar(&r.Pmem, "pmem", false,
		"durable simulated heap: redo-logged commits with priced flush/fence and a recovery verdict in run records")
	fs.Func("crash", "crash-injection clauses (crash@N, crash%P, crashphase:<commit|apply|malloc>); implies -pmem", func(v string) error {
		plan, err := fault.Parse(v, 1)
		if err != nil {
			return err
		}
		if !plan.HasCrash() {
			return fmt.Errorf("spec %q contains no crash clause", v)
		}
		r.Crash = v
		return nil
	})
	return r
}

// Spec assembles a typed harness spec from the policy group plus the
// binary's own scale flags, mapping the CLI's zero-means-default
// conventions onto the spec's explicit nil-or-override pointers.
func (r *Robustness) Spec(full bool, reps int, seed uint64) *harness.Spec {
	s := &harness.Spec{Full: full, CM: r.CM, Fault: r.Fault, Pmem: r.Pmem, Crash: r.Crash}
	if reps > 0 {
		s.Reps = &reps
	}
	if seed != 0 {
		s.Seed = &seed
	}
	if r.RetryCap != 0 {
		s.RetryCap = &r.RetryCap
	}
	if r.Deadline != 0 {
		s.Deadline = &r.Deadline
	}
	return s
}

// AddPool registers -pool on fs, validated while flags parse. The
// returned value holds the selected tx-object pooling discipline
// (PoolNone when the flag is absent); "cache" is the documented alias
// for the paper's original §6.2 thread-local cache.
func AddPool(fs *flag.FlagSet) *stm.Pooling {
	p := new(stm.Pooling)
	fs.Func("pool", "tx-object pooling discipline: "+strings.Join(stm.PoolingNames(), ", "), func(v string) error {
		d, err := stm.ParsePooling(v)
		if err != nil {
			return fmt.Errorf("unknown pooling discipline %q (allowed: %s)", v, strings.Join(stm.PoolingNames(), ", "))
		}
		*p = d
		return nil
	})
	return p
}

// Sweep is the parsed scheduler group.
type Sweep struct {
	Jobs    int
	Dir     string
	NoCache bool
}

// AddSweep registers -jobs, -cache and -no-cache on fs.
func AddSweep(fs *flag.FlagSet) *Sweep {
	s := &Sweep{}
	fs.IntVar(&s.Jobs, "jobs", runtime.NumCPU(),
		"host goroutine pool width for sweep cells (results are byte-identical for any value)")
	fs.StringVar(&s.Dir, "cache", "", "directory memoizing finished cells by config hash ('' disables)")
	fs.BoolVar(&s.NoCache, "no-cache", false, "disable the cell cache even when -cache is set")
	return s
}

// Open returns the configured cell cache (nil when disabled).
func (s *Sweep) Open() (*sweep.Cache, error) {
	if s.NoCache || s.Dir == "" {
		return nil, nil
	}
	return sweep.OpenCache(s.Dir)
}

// Output is the parsed artifact group.
type Output struct {
	Trace   string
	Metrics string
	JSON    string
}

// AddOutput registers -trace, -metrics and -json on fs.
func AddOutput(fs *flag.FlagSet) *Output {
	o := &Output{}
	fs.StringVar(&o.Trace, "trace", "",
		"write the event trace here: Chrome trace-event JSON (Perfetto-loadable), or JSON Lines if the path ends in .jsonl")
	fs.StringVar(&o.Metrics, "metrics", "", "write a Prometheus text-format metrics snapshot here")
	fs.StringVar(&o.JSON, "json", "", "write machine-readable run records (JSON) here")
	return o
}

// Enabled reports whether any artifact output was requested.
func (o *Output) Enabled() bool { return o.Trace != "" || o.Metrics != "" || o.JSON != "" }

// NewRecorder returns a recorder when any artifact needs one.
func (o *Output) NewRecorder() *obs.Recorder {
	if !o.Enabled() {
		return nil
	}
	return obs.New(obs.Config{})
}

// WriteTrace writes the recorder's event trace to -trace (no-op when
// unset), as Chrome trace-event JSON or JSON Lines by extension.
func (o *Output) WriteTrace(rec *obs.Recorder) error {
	if o.Trace == "" {
		return nil
	}
	write := rec.WriteChromeTrace
	if strings.HasSuffix(o.Trace, ".jsonl") {
		write = rec.WriteJSONL
	}
	return WriteTo(o.Trace, write)
}

// WriteMetrics writes the recorder's metrics to -metrics (no-op when
// unset); extra, when non-nil, appends additional metric blocks (e.g.
// the sweep scheduler's) after the recorder's.
func (o *Output) WriteMetrics(rec *obs.Recorder, extra func(io.Writer) error) error {
	if o.Metrics == "" {
		return nil
	}
	return WriteTo(o.Metrics, func(w io.Writer) error {
		if err := rec.WritePrometheus(w); err != nil {
			return err
		}
		if extra != nil {
			return extra(w)
		}
		return nil
	})
}

// WriteRecords writes the run records to -json (no-op when unset).
func (o *Output) WriteRecords(records []*obs.RunRecord) error {
	if o.JSON == "" {
		return nil
	}
	return WriteTo(o.JSON, func(w io.Writer) error { return obs.WriteRunRecords(w, records) })
}

// WriteTo creates path (and its directory) and streams fn into it.
func WriteTo(path string, fn func(io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
