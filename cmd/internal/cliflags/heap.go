package cliflags

import (
	"flag"
	"fmt"

	"repro/internal/heapscope"
)

// Heap is the parsed allocator-telemetry group.
type Heap struct {
	Path    string
	Cadence uint64
}

// AddHeap registers -heap and -heap-cadence on fs.
func AddHeap(fs *flag.FlagSet) *Heap {
	h := &Heap{}
	fs.StringVar(&h.Path, "heap", "",
		"write the tmheap/series/v1 allocator-state telemetry to this file")
	fs.Uint64Var(&h.Cadence, "heap-cadence", heapscope.DefaultCadence,
		"virtual cycles between heap snapshots")
	return h
}

// Enabled reports whether a telemetry artifact was requested.
func (h *Heap) Enabled() bool { return h != nil && h.Path != "" }

// Write serializes the artifact to the configured path.
func (h *Heap) Write(set *heapscope.Set) error {
	if !h.Enabled() || set == nil {
		return nil
	}
	if err := set.WriteFile(h.Path); err != nil {
		return fmt.Errorf("write heap series %s: %w", h.Path, err)
	}
	return nil
}
