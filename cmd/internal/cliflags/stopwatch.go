package cliflags

import (
	"flag"
	"strconv"
	"time"

	"repro/internal/mem"
)

// Stopwatch is the tm* binaries' only sanctioned use of host wall-clock
// time: progress reporting on stderr. Wall time must never reach run
// records, cell hashes or anything else a result depends on — results
// are functions of virtual time alone — and the nodeterm analyzer
// enforces that split structurally by whitelisting this package while
// flagging time.Now anywhere else outside internal/sweep's annotated
// host-scheduling stats.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing.
func StartStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall time since the stopwatch started, rounded
// for stderr display.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start).Round(time.Millisecond)
}

// AddSanitize registers -sanitize on fs. The flag applies as it parses:
// it arms the process-wide sanitize default, so every simulated address
// space the run constructs carries a shadow map (see internal/mem
// shadow.go). Sanitizer state is pure metadata — run-record bytes are
// identical with and without it — so the flag is deliberately kept out
// of specs and cell hashes.
func AddSanitize(fs *flag.FlagSet) {
	fs.BoolFunc("sanitize",
		"attach the shadow-memory sanitizer to every simulated address space (heap-misuse diagnostics fail the run)",
		func(v string) error {
			on, err := strconv.ParseBool(v)
			if err != nil {
				return err
			}
			mem.SetSanitizeDefault(on)
			return nil
		})
}
