package cliflags

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/prof"
)

// Profile is the parsed cycle-attribution group.
type Profile struct {
	Path string
}

// AddProfile registers -profile on fs. The extension of the given path
// picks the artifact format when the profile is written.
func AddProfile(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.Path, "profile", "",
		"write the virtual-cycle profile to this file (.folded = folded stacks, .pb.gz = gzipped pprof, else JSON)")
	return p
}

// Enabled reports whether a profile artifact was requested.
func (p *Profile) Enabled() bool { return p != nil && p.Path != "" }

// Write encodes pf to the configured path, picking the format from the
// file extension: .folded emits folded-stacks text, .pb.gz emits the
// gzipped pprof protobuf, anything else the canonical JSON form (the
// format tmprof reads).
func (p *Profile) Write(pf *prof.Profile) error {
	if !p.Enabled() {
		return nil
	}
	f, err := os.Create(p.Path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(p.Path, ".folded"):
		err = pf.WriteFolded(f)
	case strings.HasSuffix(p.Path, ".pb.gz"):
		err = pf.WritePprof(f)
	default:
		err = pf.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write profile %s: %w", p.Path, err)
	}
	return nil
}
