// Command tmheap inspects tmheap/series/v1 allocator-telemetry
// artifacts: the heap-state time series that tmrepro/tmintset/tmstamp
// capture with -heap and tmlayout emits statically with -heap-geometry.
//
// Usage:
//
//	tmheap FILE              per-series summary with metric sparklines
//	tmheap -classes FILE     per-size-class free-depth table (final sample)
//	tmheap -heat FILE        ASCII heatmap of free-list depths over time
//	tmheap diff FILE [FILE]  compare two allocators' series side by side
//
// diff takes either one artifact holding at least two series (e.g. one
// fig4 cell captured under two allocators merged into one set) or two
// artifacts, and pairs the first series of each.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/heapscope"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		if err := runDiff(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	var (
		classes = flag.Bool("classes", false, "print the per-size-class free-depth table of each series' final sample")
		heat    = flag.Bool("heat", false, "render free-list depths over time as an ASCII heatmap")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tmheap [-classes|-heat] FILE  |  tmheap diff FILE [FILE]")
		os.Exit(2)
	}
	set, err := heapscope.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch {
	case *classes:
		printClasses(set)
	case *heat:
		printHeat(set)
	default:
		printSummary(set)
	}
}

// sparkRunes renders values as a fixed-height sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func spark(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if hi > lo {
			i = int((x - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// heatRunes shade a cell by magnitude relative to the row maximum.
var heatRunes = []byte(" .:-=+*#%@")

func pick(xs []Sampleable, f func(heapscope.Sample) float64) []float64 {
	out := make([]float64, len(xs))
	for i, s := range xs {
		out[i] = f(heapscope.Sample(s))
	}
	return out
}

// Sampleable aliases the sample for the pick helper.
type Sampleable = heapscope.Sample

func samplesOf(sr *heapscope.Series) []Sampleable {
	out := make([]Sampleable, len(sr.Samples))
	copy(out, sr.Samples)
	return out
}

func human(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

func printSummary(set *heapscope.Set) {
	if set.Label != "" {
		fmt.Printf("heap telemetry: %s (%d series)\n\n", set.Label, len(set.Series))
	}
	for _, sr := range set.Series {
		fmt.Printf("%s — %s, cadence %d cycles, %d samples\n", sr.Label, sr.Allocator, sr.Cadence, len(sr.Samples))
		if g := sr.Geometry; g != nil {
			fmt.Printf("  geometry: superblock %s, blocks %d..%d bytes, %d classes\n",
				human(g.SuperblockBytes), g.MinBlock, g.MaxBlock, len(sr.Classes))
		}
		if len(sr.Samples) == 0 {
			fmt.Println()
			continue
		}
		xs := samplesOf(sr)
		last := sr.Samples[len(sr.Samples)-1]
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		row := func(name, final string, vals []float64) {
			fmt.Fprintf(tw, "  %s\t%s\t%s\n", name, final, spark(vals))
		}
		row("live bytes", human(last.LiveBytes), pick(xs, func(s heapscope.Sample) float64 { return float64(s.LiveBytes) }))
		row("reserved", human(last.ReservedBytes), pick(xs, func(s heapscope.Sample) float64 { return float64(s.ReservedBytes) }))
		row("blowup", fmt.Sprintf("%.2fx", last.Blowup), pick(xs, func(s heapscope.Sample) float64 { return s.Blowup }))
		row("internal frag", fmt.Sprintf("%.1f%%", last.InternalFrag*100), pick(xs, func(s heapscope.Sample) float64 { return s.InternalFrag }))
		row("external frag", fmt.Sprintf("%.1f%%", last.ExternalFrag*100), pick(xs, func(s heapscope.Sample) float64 { return s.ExternalFrag }))
		row("shared lines", fmt.Sprintf("%d", last.SharedLines), pick(xs, func(s heapscope.Sample) float64 { return float64(s.SharedLines) }))
		row("line churn", fmt.Sprintf("%d", last.LineChurn), pick(xs, func(s heapscope.Sample) float64 { return float64(s.LineChurn) }))
		row("max stripe", fmt.Sprintf("%d", last.MaxStripe), pick(xs, func(s heapscope.Sample) float64 { return float64(s.MaxStripe) }))
		if last.Superblocks > 0 {
			row("occupancy", fmt.Sprintf("%.1f%%", last.Occupancy*100), pick(xs, func(s heapscope.Sample) float64 { return s.Occupancy }))
			row("superblocks", fmt.Sprintf("%d (%d empty)", last.Superblocks, last.EmptySuperblocks),
				pick(xs, func(s heapscope.Sample) float64 { return float64(s.Superblocks) }))
		}
		if last.Migrations > 0 {
			row("migrations", fmt.Sprintf("%d", last.Migrations), pick(xs, func(s heapscope.Sample) float64 { return float64(s.Migrations) }))
		}
		if last.Arenas > 0 {
			row("arenas", fmt.Sprintf("%d", last.Arenas), pick(xs, func(s heapscope.Sample) float64 { return float64(s.Arenas) }))
		}
		tw.Flush()
		fmt.Println()
	}
}

func printClasses(set *heapscope.Set) {
	for _, sr := range set.Series {
		fmt.Printf("%s — %s\n", sr.Label, sr.Allocator)
		if len(sr.Classes) == 0 {
			fmt.Println("  dynamic bins (no static class table)")
			fmt.Println()
			continue
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  class\tfree depth (final)\tfree bytes")
		var last heapscope.Sample
		if len(sr.Samples) > 0 {
			last = sr.Samples[len(sr.Samples)-1]
		}
		for i, sz := range sr.Classes {
			var d uint64
			if i < len(last.FreeDepths) {
				d = last.FreeDepths[i]
			}
			fmt.Fprintf(tw, "  %d\t%d\t%s\n", sz, d, human(d*sz))
		}
		tw.Flush()
		fmt.Println()
	}
}

func printHeat(set *heapscope.Set) {
	for _, sr := range set.Series {
		fmt.Printf("%s — %s: free-list depth by class (rows) over samples (cols)\n", sr.Label, sr.Allocator)
		if len(sr.Classes) == 0 || len(sr.Samples) == 0 {
			fmt.Println("  (no class table or no samples)")
			fmt.Println()
			continue
		}
		for i, sz := range sr.Classes {
			var hi uint64
			for _, s := range sr.Samples {
				if i < len(s.FreeDepths) && s.FreeDepths[i] > hi {
					hi = s.FreeDepths[i]
				}
			}
			var b strings.Builder
			for _, s := range sr.Samples {
				var d uint64
				if i < len(s.FreeDepths) {
					d = s.FreeDepths[i]
				}
				k := 0
				if hi > 0 {
					k = int(float64(d) / float64(hi) * float64(len(heatRunes)-1))
				}
				b.WriteByte(heatRunes[k])
			}
			fmt.Printf("  %8d |%s| max %d\n", sz, b.String(), hi)
		}
		fmt.Println()
	}
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var a, b *heapscope.Series
	switch fs.NArg() {
	case 1:
		set, err := heapscope.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		if len(set.Series) < 2 {
			return fmt.Errorf("tmheap diff: %s holds %d series, need 2", fs.Arg(0), len(set.Series))
		}
		a, b = set.Series[0], set.Series[1]
	case 2:
		setA, err := heapscope.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		setB, err := heapscope.ReadFile(fs.Arg(1))
		if err != nil {
			return err
		}
		if len(setA.Series) == 0 || len(setB.Series) == 0 {
			return fmt.Errorf("tmheap diff: both artifacts must hold at least one series")
		}
		a, b = setA.Series[0], setB.Series[0]
	default:
		return fmt.Errorf("usage: tmheap diff FILE [FILE]")
	}
	if len(a.Samples) == 0 || len(b.Samples) == 0 {
		return fmt.Errorf("tmheap diff: empty series (%d vs %d samples)", len(a.Samples), len(b.Samples))
	}
	fmt.Printf("diff: %s (%s)  vs  %s (%s)\n\n", a.Label, a.Allocator, b.Label, b.Allocator)
	la, lb := a.Samples[len(a.Samples)-1], b.Samples[len(b.Samples)-1]
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\t%s\t%s\tratio\n", a.Allocator, b.Allocator)
	num := func(name string, va, vb float64, fmtv func(float64) string) {
		ratio := "-"
		if va != 0 {
			ratio = fmt.Sprintf("%.2fx", vb/va)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", name, fmtv(va), fmtv(vb), ratio)
	}
	bytesFmt := func(v float64) string { return human(uint64(v)) }
	pctFmt := func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
	intFmt := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	num("live bytes", float64(la.LiveBytes), float64(lb.LiveBytes), bytesFmt)
	num("reserved bytes", float64(la.ReservedBytes), float64(lb.ReservedBytes), bytesFmt)
	num("blowup", la.Blowup, lb.Blowup, func(v float64) string { return fmt.Sprintf("%.2fx", v) })
	num("internal frag", la.InternalFrag, lb.InternalFrag, pctFmt)
	num("external frag", la.ExternalFrag, lb.ExternalFrag, pctFmt)
	num("shared lines", float64(la.SharedLines), float64(lb.SharedLines), intFmt)
	num("line churn", float64(la.LineChurn), float64(lb.LineChurn), intFmt)
	num("max stripe", float64(la.MaxStripe), float64(lb.MaxStripe), intFmt)
	num("free blocks", float64(la.FreeBlocks), float64(lb.FreeBlocks), intFmt)
	num("cache bytes", float64(la.CacheBytes), float64(lb.CacheBytes), bytesFmt)
	num("central bytes", float64(la.CentralBytes), float64(lb.CentralBytes), bytesFmt)
	tw.Flush()

	fmt.Println("\ntrajectories (full run):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	tra, trb := samplesOf(a), samplesOf(b)
	tr := func(name string, f func(heapscope.Sample) float64) {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", name, spark(pick(tra, f)), spark(pick(trb, f)))
	}
	fmt.Fprintf(tw, "metric\t%s\t%s\n", a.Allocator, b.Allocator)
	tr("reserved", func(s heapscope.Sample) float64 { return float64(s.ReservedBytes) })
	tr("blowup", func(s heapscope.Sample) float64 { return s.Blowup })
	tr("external frag", func(s heapscope.Sample) float64 { return s.ExternalFrag })
	tr("shared lines", func(s heapscope.Sample) float64 { return float64(s.SharedLines) })
	tw.Flush()
	return nil
}
