// Command tmcrash runs the durable twin of the paper's Table 5: a
// crash→recover→verify matrix over the four allocator models. Each cell
// runs the synthetic benchmark with the durable heap attached, halts it
// deterministically at a chosen commit-phase checkpoint, recovers, and
// verifies the recovery invariants (no lost committed writes, no
// resurrected freed blocks, free-list closure, shadow consistency). The
// report ranks which allocator's metadata layout tears worst — the
// fraction of journal-covered metadata words recovery had to repair.
//
// Usage:
//
//	tmcrash                         # 4 allocators x 3 crash phases
//	tmcrash -alloc glibc,tcmalloc -at 7
//	tmcrash -jobs 8 -json out/crash.json
//
// Exit status is nonzero when any cell's recovery verdict is not ok.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/cmd/internal/cliflags"
	"repro/internal/harness"
	"repro/internal/heapscope"
	"repro/internal/intset"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/sweep"
)

// phases are the commit-path checkpoint families a crash can target.
var phases = []string{"commit", "apply", "malloc"}

// agg accumulates one allocator's tear surface across its crash cells.
type agg struct {
	torn, words uint64
	bad         int
}

// ratio is the tear fraction: journal-covered metadata words recovery
// had to rewrite.
func (a *agg) ratio() float64 {
	if a.words == 0 {
		return 0
	}
	return float64(a.torn) / float64(a.words)
}

func main() {
	var (
		allocs  = flag.String("alloc", "all", "allocators to crash (comma list, or all)")
		kind    = flag.String("kind", "linkedlist", "structure: linkedlist, hashset, rbtree")
		threads = flag.Int("threads", 4, "logical threads")
		initial = flag.Int("initial", 128, "initial set size")
		ops     = flag.Int("ops", 200, "operations per thread")
		updates = flag.Int("updates", 60, "update percentage")
		at      = flag.Uint64("at", 200, "crash at the N-th checkpoint of each phase (default lands past initialization, with frees in flight)")
		seed    = flag.Uint64("seed", 0, "workload seed (0 = default)")
	)
	sw := cliflags.AddSweep(flag.CommandLine)
	outp := cliflags.AddOutput(flag.CommandLine)
	cliflags.AddSanitize(flag.CommandLine)
	flag.Parse()

	names := harness.Allocators()
	if *allocs != "all" {
		names = nil
		for _, a := range strings.Split(*allocs, ",") {
			names = append(names, strings.TrimSpace(a))
		}
	}

	rec := outp.NewRecorder()
	type cellID struct {
		alloc, phase string
	}
	var ids []cellID
	var cells []sweep.Cell
	for _, a := range names {
		for _, ph := range phases {
			cfg := intset.Config{
				Kind:         intset.Kind(*kind),
				Allocator:    a,
				Threads:      *threads,
				InitialSize:  *initial,
				OpsPerThread: *ops,
				UpdatePct:    *updates,
				Seed:         *seed,
				Crash:        fmt.Sprintf("crashphase:%s@%d", ph, *at),
			}
			key := fmt.Sprintf("tmcrash/%s/%s/%s/t%d/i%d/o%d/u%d/at%d",
				*kind, a, ph, *threads, *initial, *ops, *updates, *at)
			spec, err := json.Marshal(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runCfg := cfg
			cells = append(cells, sweep.Cell{
				Key:  key,
				Spec: spec,
				Seed: *seed,
				Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
					c := runCfg
					c.Obs = rec
					res, err := intset.Run(c)
					if err != nil {
						return nil, nil, nil, nil, err
					}
					var d *obs.Delta
					if rec != nil {
						d = rec.Delta()
					}
					return res, d, nil, nil, nil
				},
			})
			ids = append(ids, cellID{alloc: a, phase: ph})
		}
	}

	// Crash cells never cache: the verdict must come from recovery
	// actually running, not a memoized claim.
	sched := &sweep.Scheduler{Jobs: sw.Jobs}
	outs, stats := sched.Run(cells)

	record := obs.NewRunRecord("tmcrash")
	record.Title = "Crash→recover→verify matrix across allocators (durable Table 5 twin)"
	record.Config = obs.RunConfig{Seed: *seed, Extra: map[string]string{
		"kind": *kind, "threads": fmt.Sprintf("%d", *threads), "at": fmt.Sprintf("%d", *at),
	}}
	record.Sweep = &obs.SweepInfo{
		CellSet:  sweep.CellSetHash(cells),
		Cells:    stats.Cells,
		Executed: stats.Executed,
		Cached:   stats.Cached,
		Jobs:     sw.Jobs,
	}

	perAlloc := map[string]*agg{}
	table := obs.Table{
		Title: "Crash matrix",
		Columns: []string{"Allocator", "Phase", "CrashCycle", "TornLogs", "Replayed",
			"TornMeta", "MetaWords", "Lost", "Resurrected", "ChainBreaks", "Verdict"},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(table.Columns, "\t"))
	notOK := 0
	var worst *obs.RecoveryInfo
	for i, out := range outs {
		id := ids[i]
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "%s/%s: %v\n", id.alloc, id.phase, out.Err)
			notOK++
			continue
		}
		var res intset.Result
		if err := json.Unmarshal(out.Payload, &res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := res.Recovery
		if r == nil || !r.Crashed {
			fmt.Fprintf(os.Stderr, "%s/%s: crash never fired (raise -ops or lower -at)\n", id.alloc, id.phase)
			notOK++
			continue
		}
		if r.Verdict != obs.StatusOK {
			notOK++
		}
		if worst == nil || statusRank(r.Verdict) > statusRank(worst.Verdict) {
			worst = r
		}
		a := perAlloc[id.alloc]
		if a == nil {
			a = &agg{}
			perAlloc[id.alloc] = a
		}
		a.torn += r.TornMeta
		a.words += r.MetaWords
		if r.Verdict != obs.StatusOK {
			a.bad++
		}
		row := []string{
			harness.DisplayName(id.alloc), id.phase,
			fmt.Sprintf("%d", r.CrashCycle),
			fmt.Sprintf("%d", r.TornLogs), fmt.Sprintf("%d", r.Replayed),
			fmt.Sprintf("%d", r.TornMeta), fmt.Sprintf("%d", r.MetaWords),
			fmt.Sprintf("%d", r.LostWrites), fmt.Sprintf("%d", r.Resurrected),
			fmt.Sprintf("%d", r.ChainBreaks), r.Verdict,
		}
		table.Rows = append(table.Rows, row)
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()

	// Tear ranking: metadata words recovery had to rewrite, as a share
	// of the words its journal covers. In-band layouts (glibc's header
	// and size words inside every chunk) expose more surface than pure
	// link-word layouts, exactly as Table 5's per-allocator overhead
	// ranking would predict for a durable heap.
	rank := obs.Table{
		Title:   "Metadata tear ranking (worst first)",
		Columns: []string{"Allocator", "TornMeta", "MetaWords", "Torn%", "BadVerdicts"},
	}
	order := make([]string, 0, len(perAlloc))
	for a := range perAlloc {
		order = append(order, a)
	}
	sort.Slice(order, func(i, j int) bool {
		ri, rj := perAlloc[order[i]].ratio(), perAlloc[order[j]].ratio()
		if ri != rj {
			return ri > rj
		}
		return order[i] < order[j]
	})
	fmt.Printf("\nmetadata tear ranking (worst first):\n")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(rank.Columns, "\t"))
	for _, a := range order {
		g := perAlloc[a]
		row := []string{
			harness.DisplayName(a),
			fmt.Sprintf("%d", g.torn), fmt.Sprintf("%d", g.words),
			fmt.Sprintf("%.1f", g.ratio()*100), fmt.Sprintf("%d", g.bad),
		}
		rank.Rows = append(rank.Rows, row)
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	if len(order) > 0 {
		fmt.Printf("\n%s tears worst: %.1f%% of journal-covered metadata words needed repair\n",
			harness.DisplayName(order[0]), perAlloc[order[0]].ratio()*100)
	}

	record.Tables = []obs.Table{table, rank}
	if notOK == 0 {
		record.Status = obs.StatusOK
	} else {
		record.Status = obs.StatusFailed
		record.Failure = fmt.Sprintf("%d of %d crash cells did not recover cleanly", notOK, len(cells))
	}
	record.Recovery = worst
	if outp.JSON != "" {
		record.Attach(rec)
		if err := cliflags.WriteTo(outp.JSON, record.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := outp.WriteMetrics(rec, stats.WritePrometheus); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := outp.WriteTrace(rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if notOK > 0 {
		fmt.Fprintf(os.Stderr, "tmcrash: %d cell(s) failed the recovery gate\n", notOK)
		os.Exit(1)
	}
}

func statusRank(s string) int {
	switch s {
	case obs.StatusFailed:
		return 2
	case obs.StatusDegraded:
		return 1
	}
	return 0
}
