// Command tmrepro regenerates the tables and figures of "Performance
// Implications of Dynamic Memory Allocators on Transactional Memory
// Systems" (PPoPP 2015) on this repository's simulated substrate.
//
// Experiments decompose into independent (configuration, repetition)
// cells that run on a work-stealing goroutine pool (-jobs) and memoize
// into an on-disk cache (-cache); output bytes are identical for any
// pool width, and a repeated invocation with the same cache serves
// every cell from disk.
//
// Usage:
//
//	tmrepro -list
//	tmrepro -run fig1,tab4
//	tmrepro -run all -full -reps 5 -out results/ -jobs 8 -cache .tmcache
//	tmrepro -run fig4 -quick -trace out.json -metrics out.prom -json out/run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/cmd/internal/cliflags"
	"repro/internal/harness"
	"repro/internal/heapscope"
	"repro/internal/obs"
	"repro/internal/prof"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		run   = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		full  = flag.Bool("full", false, "paper-scale parameters (slow)")
		quick = flag.Bool("quick", false, "quick-scale parameters (the default; overrides -full)")
		reps  = flag.Int("reps", 0, "repetitions per configuration (0 = per-experiment default)")
		seed  = flag.Uint64("seed", 0, "base seed (0 = default)")
		out   = flag.String("out", "", "directory to also write per-experiment .txt and BENCH_<id>.json files into")
		chart = flag.Bool("chart", true, "render figures' series as ASCII charts")
		md    = flag.Bool("md", false, "emit GitHub-flavoured markdown instead of plain tables")
		race  = flag.Bool("race-sim", false, "attach the happens-before race checker to every cell (bypasses the cache)")
		conf  = flag.Bool("conflict", false, "attach the abort-forensics observatory to every cell (bypasses the cache)")
	)
	rob := cliflags.AddRobustness(flag.CommandLine)
	pool := cliflags.AddPool(flag.CommandLine)
	sw := cliflags.AddSweep(flag.CommandLine)
	outp := cliflags.AddOutput(flag.CommandLine)
	cliflags.AddSanitize(flag.CommandLine)
	pr := cliflags.AddProfile(flag.CommandLine)
	hp := cliflags.AddHeap(flag.CommandLine)
	flag.Parse()
	if *quick {
		*full = false
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range harness.IDs() {
			e, _ := harness.Get(id)
			fmt.Printf("  %-6s %s\n", id, e.Paper)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <ids|all>")
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = harness.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	spec := rob.Spec(*full, *reps, *seed)
	spec.Pool = *pool
	spec.Obs = outp.NewRecorder()
	spec.Profile = pr.Enabled()
	spec.Heap = hp.Enabled()
	spec.HeapCadence = hp.Cadence
	spec.Race = *race
	spec.Conflict = *conf
	cache, err := sw.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	session := &harness.Session{Spec: spec, Jobs: sw.Jobs, Cache: cache}

	fmt.Fprintf(os.Stderr, "running %d experiment(s) with -jobs %d...\n", len(ids), sw.Jobs)
	watch := cliflags.StartStopwatch()
	runs, stats := session.Run(ids)
	fmt.Fprintf(os.Stderr, "sweep: %s\n", stats)

	var records []*obs.RunRecord
	failed := 0
	for _, r := range runs {
		if r.Err != nil {
			// A failing experiment still yields a valid failed-status run
			// record, so downstream tooling sees the outcome, not a gap.
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, r.Err)
			failed++
			r.Health.Note(obs.StatusFailed, r.Err.Error())
			if outp.Enabled() || *out != "" {
				rec := session.Record(r)
				records = append(records, rec)
				if *out != "" {
					if mkErr := os.MkdirAll(*out, 0o755); mkErr == nil {
						cliflags.WriteTo(filepath.Join(*out, "BENCH_"+r.ID+".json"), rec.WriteJSON)
					}
				}
			}
			continue
		}
		if s := r.Health.Status(); s != "" && s != obs.StatusOK {
			fmt.Fprintf(os.Stderr, "%s status: %s (%s)\n", r.ID, s, r.Health.Failure())
		}
		if rc := r.Recovery; rc != nil && rc.Crashed {
			fmt.Fprintf(os.Stderr, "%s durability: crash at cycle %d (%s phase); recovery %s\n",
				r.ID, rc.CrashCycle, rc.CrashPhase, rc.Verdict)
		}

		writers := []io.Writer{os.Stdout}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*out, r.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			writers = append(writers, f)
			defer f.Close()
		}
		mw := io.MultiWriter(writers...)
		if *md {
			harness.PrintMarkdown(mw, r.Result)
		} else {
			harness.Print(mw, r.Result)
			if *chart && len(r.Result.Series) > 0 {
				harness.Chart(mw, r.Result, 64, 14)
			}
		}

		if outp.Enabled() || *out != "" {
			rec := session.Record(r)
			records = append(records, rec)
			if *out != "" {
				if err := cliflags.WriteTo(filepath.Join(*out, "BENCH_"+r.ID+".json"), rec.WriteJSON); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", watch.Elapsed())

	if pr.Enabled() {
		var profiles []*prof.Profile
		for _, r := range runs {
			if r.Profile != nil {
				profiles = append(profiles, r.Profile)
			}
		}
		merged := prof.Merge(profiles...)
		merged.Label = strings.Join(ids, ",")
		if err := pr.Write(merged); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if hp.Enabled() {
		set := heapscope.NewSet(strings.Join(ids, ","))
		for _, r := range runs {
			if r.Heap != nil {
				set.Series = append(set.Series, r.Heap.Series...)
			}
		}
		if err := hp.Write(set); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := outp.WriteRecords(records); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := outp.WriteMetrics(spec.Obs, stats.WritePrometheus); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := outp.WriteTrace(spec.Obs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
