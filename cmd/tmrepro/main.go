// Command tmrepro regenerates the tables and figures of "Performance
// Implications of Dynamic Memory Allocators on Transactional Memory
// Systems" (PPoPP 2015) on this repository's simulated substrate.
//
// Usage:
//
//	tmrepro -list
//	tmrepro -run fig1,tab4
//	tmrepro -run all -full -reps 5 -out results/
//	tmrepro -run fig4 -quick -trace out.json -metrics out.prom -json out/run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		run      = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		quick    = flag.Bool("quick", false, "quick-scale parameters (the default; overrides -full)")
		reps     = flag.Int("reps", 0, "repetitions per configuration (0 = per-experiment default)")
		seed     = flag.Uint64("seed", 0, "base seed (0 = default)")
		out      = flag.String("out", "", "directory to also write per-experiment .txt and BENCH_<id>.json files into")
		chart    = flag.Bool("chart", true, "render figures' series as ASCII charts")
		md       = flag.Bool("md", false, "emit GitHub-flavoured markdown instead of plain tables")
		trace    = flag.String("trace", "", "write the event trace here: Chrome trace-event JSON (Perfetto-loadable), or JSON Lines if the path ends in .jsonl")
		metrics  = flag.String("metrics", "", "write a Prometheus text-format metrics snapshot here")
		jsonOut  = flag.String("json", "", "write machine-readable run records (JSON) here")
		cmName   = flag.String("cm", "", "contention manager for every workload: suicide (default), backoff, karma, aggressive")
		retryCap = flag.Uint64("retry-cap", 0, "aborts before the irrevocable fallback (0 = default)")
		faultStr = flag.String("fault", "", "fault plan injected into every workload (internal/fault grammar)")
		deadline = flag.Uint64("deadline", 0, "virtual-cycle watchdog bound per workload phase (0 = none)")
	)
	flag.Parse()
	if *quick {
		*full = false
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range harness.IDs() {
			e, _ := harness.Get(id)
			fmt.Printf("  %-6s %s\n", id, e.Paper)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <ids|all>")
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = harness.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	base := harness.Options{
		Full: *full, Reps: *reps, Seed: *seed,
		CM: *cmName, RetryCap: *retryCap, Fault: *faultStr, Deadline: *deadline,
	}
	if *trace != "" || *metrics != "" || *jsonOut != "" {
		base.Obs = obs.New(obs.Config{})
	}

	var records []*obs.RunRecord
	failed := 0
	for _, id := range ids {
		e, ok := harness.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (see -list)\n", id)
			failed++
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", id, e.Paper)
		start := time.Now()
		opts := base
		opts.Health = &harness.Health{}
		res, err := runExperiment(e, opts)
		if err != nil {
			// A panicking experiment still yields a valid failed-status run
			// record, so downstream tooling sees the outcome, not a gap.
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed++
			opts.Health.Note(obs.StatusFailed, err.Error())
			if opts.Obs != nil || *out != "" {
				rec := harness.RunRecordFor(&harness.Result{ID: id, Title: e.Paper}, opts)
				records = append(records, rec)
				if *out != "" {
					if mkErr := os.MkdirAll(*out, 0o755); mkErr == nil {
						writeTo(filepath.Join(*out, "BENCH_"+id+".json"), rec.WriteJSON)
					}
				}
			}
			continue
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		if s := opts.Health.Status(); s != "" && s != obs.StatusOK {
			fmt.Fprintf(os.Stderr, "%s status: %s (%s)\n", id, s, opts.Health.Failure())
		}

		writers := []io.Writer{os.Stdout}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*out, id+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			writers = append(writers, f)
			defer f.Close()
		}
		mw := io.MultiWriter(writers...)
		if *md {
			harness.PrintMarkdown(mw, res)
		} else {
			harness.Print(mw, res)
			if *chart && len(res.Series) > 0 {
				harness.Chart(mw, res, 64, 14)
			}
		}

		if opts.Obs != nil || *out != "" {
			rec := harness.RunRecordFor(res, opts)
			records = append(records, rec)
			if *out != "" {
				if err := writeTo(filepath.Join(*out, "BENCH_"+id+".json"), rec.WriteJSON); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}

	if *jsonOut != "" {
		err := writeTo(*jsonOut, func(w io.Writer) error { return obs.WriteRunRecords(w, records) })
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metrics != "" {
		if err := writeTo(*metrics, base.Obs.WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *trace != "" {
		write := base.Obs.WriteChromeTrace
		if strings.HasSuffix(*trace, ".jsonl") {
			write = base.Obs.WriteJSONL
		}
		if err := writeTo(*trace, write); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runExperiment runs one experiment with panic capture: whatever
// escapes the workloads' own recovery (a harness bug, an injected
// fault tripping an unguarded path) becomes an error instead of
// tearing down the whole reproduction sweep.
func runExperiment(e *harness.Experiment, opts harness.Options) (res *harness.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return e.Run(opts)
}

// writeTo creates path (and its directory) and streams fn into it.
func writeTo(path string, fn func(io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
