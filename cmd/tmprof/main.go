// Command tmprof inspects and compares virtual-cycle profiles written
// by the tm* binaries' -profile flag (the canonical JSON form).
//
// Usage:
//
//	tmprof top [-n 20] profile.json        flat per-frame self/cum table
//	tmprof folded profile.json             folded-stacks text (flamegraph input)
//	tmprof pprof [-o out.pb.gz] profile.json   gzipped pprof profile.proto
//	tmprof diff [-n 20] a.json b.json      per-region virtual-cycle deltas
//
// Every transformation is deterministic: the same input profile always
// produces byte-identical output, so artifacts can be diffed in CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/prof"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tmprof top [-n N] profile.json        flat per-frame self/cum cycles
  tmprof folded profile.json            folded-stacks text
  tmprof pprof [-o FILE] profile.json   gzipped pprof profile.proto (stdout default)
  tmprof diff [-n N] a.json b.json      per-region cycle deltas between two profiles`)
	os.Exit(2)
}

func load(path string) *prof.Profile {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	p, err := prof.ReadJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	return p
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "top":
		fs := flag.NewFlagSet("top", flag.ExitOnError)
		n := fs.Int("n", 20, "rows to print (0 = all)")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		p := load(fs.Arg(0))
		stats := p.FrameStats()
		if *n > 0 && len(stats) > *n {
			stats = stats[:*n]
		}
		if p.Label != "" {
			fmt.Printf("profile %s: %d virtual cycles, %d samples\n", p.Label, p.TotalCycles, len(p.Samples))
		} else {
			fmt.Printf("profile: %d virtual cycles, %d samples\n", p.TotalCycles, len(p.Samples))
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "self\tself%\tcum\tcum%\tframe\t")
		for _, s := range stats {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%s\t%s\t\n",
				s.Self, pct(s.Self, p.TotalCycles), s.Cum, pct(s.Cum, p.TotalCycles), s.Frame)
		}
		tw.Flush()

	case "folded":
		fs := flag.NewFlagSet("folded", flag.ExitOnError)
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		if err := load(fs.Arg(0)).WriteFolded(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

	case "pprof":
		fs := flag.NewFlagSet("pprof", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		p := load(fs.Arg(0))
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := p.WritePprof(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		n := fs.Int("n", 20, "rows to print (0 = all)")
		fs.Parse(args)
		if fs.NArg() != 2 {
			usage()
		}
		a, b := load(fs.Arg(0)), load(fs.Arg(1))
		if a.Label == "" {
			a.Label = fs.Arg(0)
		}
		if b.Label == "" {
			b.Label = fs.Arg(1)
		}
		if err := prof.Diff(a, b).WriteText(os.Stdout, *n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

	default:
		usage()
	}
}

// pct formats v as a percentage of total, "-" when total is zero.
func pct(v, total uint64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
}
