// Command tmwhy answers "why did my transaction abort?": it runs the
// paper's write-dominated synthetic benchmark with the abort-forensics
// observatory attached and dissects every abort into true sharing,
// allocator-induced false sharing, ORT stripe aliasing, heap-metadata
// conflicts and unattributable rollbacks — then compares allocators by
// how many wasted cycles their placement decisions caused (the
// forensic counterpart of the paper's Table 5).
//
// Usage:
//
//	tmwhy                                    all allocators, linked list, 8 threads
//	tmwhy -allocs glibc,tcmalloc -top 8      two-allocator diff, deeper tables
//	tmwhy -allocs glibc -dot glibc.dot       export one conflict graph to graphviz
//	tmwhy -kind rbtree -threads 4 -json out.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/cmd/internal/cliflags"
	"repro/internal/alloc"
	"repro/internal/conflict"
	"repro/internal/intset"
	"repro/internal/obs"
)

func main() {
	var (
		kind    = flag.String("kind", "linkedlist", "structure: linkedlist, hashset, rbtree")
		allocs  = flag.String("allocs", "", "comma-separated allocators to compare (default: all registered)")
		threads = flag.Int("threads", 8, "logical threads (1..8)")
		updates = flag.Int("updates", 60, "update percentage")
		full    = flag.Bool("full", false, "paper-scale parameters (slow)")
		seed    = flag.Uint64("seed", 0, "workload seed")
		top     = flag.Int("top", 5, "rows per killer/blame/offender table")
		dot     = flag.String("dot", "", "write the conflict graph as graphviz (requires a single allocator)")
		jsonOut = flag.String("json", "", "write the tmwhy run record as JSON")
	)
	flag.Parse()

	names := alloc.Names()
	if *allocs != "" {
		names = nil
		for _, n := range strings.Split(*allocs, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	if *dot != "" && len(names) != 1 {
		fmt.Fprintln(os.Stderr, "tmwhy: -dot needs exactly one allocator (use -allocs)")
		os.Exit(2)
	}

	initial, keyRange, ops := scale(*full, intset.Kind(*kind))
	runs := make([]run, 0, len(names))
	for _, name := range names {
		res, err := intset.Run(intset.Config{
			Kind:         intset.Kind(*kind),
			Allocator:    name,
			Threads:      *threads,
			InitialSize:  initial,
			KeyRange:     keyRange,
			UpdatePct:    *updates,
			OpsPerThread: ops,
			Seed:         *seed,
			Conflict:     true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if res.ConflictReport == nil {
			fmt.Fprintf(os.Stderr, "tmwhy: %s run returned no forensics\n", name)
			os.Exit(1)
		}
		runs = append(runs, run{name: name, res: res, report: res.ConflictReport})
	}

	record := obs.NewRunRecord("tmwhy")
	record.Title = fmt.Sprintf("abort forensics: %s, %d thread(s), %d%% updates", *kind, *threads, *updates)
	record.Status = obs.StatusOK
	record.Config = obs.RunConfig{
		Full: *full, Seed: *seed,
		Extra: map[string]string{
			"kind":    *kind,
			"threads": fmt.Sprintf("%d", *threads),
			"updates": fmt.Sprintf("%d", *updates),
			"allocs":  strings.Join(names, ","),
		},
	}

	for _, r := range runs {
		printAllocator(r.name, r.res, r.report, *top)
		record.Tables = append(record.Tables, classTable(r.name, r.report))
		foldConflict(record, r.res.Conflict)
	}

	if len(runs) > 1 {
		diff := diffTable(runs)
		record.Tables = append(record.Tables, diff)
		fmt.Println("allocator blame diff (wasted cycles by cause):")
		renderTable(diff)
	}

	if *dot != "" {
		if err := cliflags.WriteTo(*dot, func(w io.Writer) error {
			return runs[0].report.WriteDot(w, runs[0].name)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := cliflags.WriteTo(*jsonOut, record.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// foldConflict accumulates one allocator run's flat conflict block
// into the record, with the harness's fold semantics: counters sum,
// the deepest chain and the heaviest site/offender win, the first
// exemplar sticks.
func foldConflict(record *obs.RunRecord, c *obs.ConflictInfo) {
	if c == nil {
		return
	}
	if record.Conflict == nil {
		cp := *c
		record.Conflict = &cp
		return
	}
	dst := record.Conflict
	dst.Events += c.Events
	dst.TrueSharing += c.TrueSharing
	dst.FalseSharing += c.FalseSharing
	dst.StripeAlias += c.StripeAlias
	dst.Metadata += c.Metadata
	dst.Other += c.Other
	dst.WastedCycles += c.WastedCycles
	dst.WastedTrue += c.WastedTrue
	dst.WastedFalse += c.WastedFalse
	dst.WastedAlias += c.WastedAlias
	dst.WastedMeta += c.WastedMeta
	dst.WastedOther += c.WastedOther
	dst.SameLine += c.SameLine
	dst.CrossBlock += c.CrossBlock
	dst.Edges += c.Edges
	if c.LongestChain > dst.LongestChain {
		dst.LongestChain = c.LongestChain
	}
	if c.TopSiteWasted > dst.TopSiteWasted {
		dst.TopSite = c.TopSite
		dst.TopSiteWasted = c.TopSiteWasted
	}
	if c.TopOffenderHits > dst.TopOffenderHits {
		dst.TopOffender = c.TopOffender
		dst.TopOffenderHits = c.TopOffenderHits
	}
	if dst.First == "" {
		dst.First = c.First
	}
}

// scale mirrors the harness's fig4 quick/full workload geometry so
// tmwhy dissects the same cell the figures measure.
func scale(full bool, kind intset.Kind) (initial, keyRange, ops int) {
	if full {
		return 4096, 8192, 400
	}
	if kind == intset.LinkedList {
		return 768, 1536, 120
	}
	return 2048, 4096, 300
}

func pct(part, whole uint64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", float64(part)/float64(whole)*100)
}

func printAllocator(name string, res intset.Result, r *conflict.Report, top int) {
	fmt.Printf("=== %s: %d aborts, %d wasted cycles (%.1f%% abort rate) ===\n",
		name, r.Events, r.WastedCycles, res.Tx.AbortRate()*100)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "class\taborts\twasted cycles\tshare of waste")
	for _, c := range r.Classes {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", c.Class, c.Aborts, c.Wasted, pct(c.Wasted, r.WastedCycles))
	}
	fmt.Fprintf(tw, "allocator-caused\t\t%d\t%s\n", r.AllocatorWasted(), pct(r.AllocatorWasted(), r.WastedCycles))
	tw.Flush()

	if len(r.Edges) > 0 {
		fmt.Println("\ntop killers (killer -> victim):")
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "edge\taborts\tplacement-caused\twasted cycles")
		for i, e := range r.Edges {
			if i >= top {
				break
			}
			fmt.Fprintf(tw, "%s -> %s\t%d\t%d\t%d\n", e.Killer, e.Victim, e.Aborts, e.Placement, e.Wasted)
		}
		tw.Flush()
	}
	if len(r.Sites) > 0 {
		fmt.Println("\nblame by allocation site:")
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "site\taborts\twasted cycles")
		for i, s := range r.Sites {
			if i >= top {
				break
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\n", s.Site, s.Aborts, s.Wasted)
		}
		tw.Flush()
	}
	if len(r.Offenders) > 0 {
		fmt.Println("\nrepeat-offender addresses:")
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for i, o := range r.Offenders {
			if i >= top {
				break
			}
			fmt.Fprintf(tw, "0x%x\t%d aborts\n", o.Addr, o.Hits)
		}
		tw.Flush()
	}
	if r.LongestChain > 1 {
		fmt.Printf("\nlongest kill chain: %d aborts deep\n", r.LongestChain)
	}
	if len(r.Exemplars) > 0 {
		fmt.Println("\nexemplar:", r.Exemplars[0].Rendered)
	}
	fmt.Println()
}

func classTable(name string, r *conflict.Report) obs.Table {
	t := obs.Table{
		Title:   fmt.Sprintf("Abort classes (%s)", name),
		Columns: []string{"Class", "Aborts", "Wasted cycles", "Share"},
	}
	for _, c := range r.Classes {
		t.Rows = append(t.Rows, []string{c.Class, fmt.Sprintf("%d", c.Aborts),
			fmt.Sprintf("%d", c.Wasted), pct(c.Wasted, r.WastedCycles)})
	}
	return t
}

// run pairs one allocator's measured result with its forensic report.
type run struct {
	name   string
	res    intset.Result
	report *conflict.Report
}

func diffTable(runs []run) obs.Table {
	t := obs.Table{
		Title: "Allocator blame diff",
		Columns: []string{"Allocator", "Aborts", "Wasted cycles",
			"Allocator-caused (false+meta)", "Share", "Placement-caused (false+alias+meta)", "Share"},
	}
	for _, r := range runs {
		rep := r.report
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%d", rep.Events),
			fmt.Sprintf("%d", rep.WastedCycles),
			fmt.Sprintf("%d", rep.AllocatorWasted()),
			pct(rep.AllocatorWasted(), rep.WastedCycles),
			fmt.Sprintf("%d", rep.PlacementWasted()),
			pct(rep.PlacementWasted(), rep.WastedCycles),
		})
	}
	return t
}

func renderTable(t obs.Table) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}
