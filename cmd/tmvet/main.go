// Command tmvet runs the repository's static analyzers — the lint gate
// behind the determinism and isolation invariants the simulator's
// results depend on:
//
//	nodeterm       no wall clock, global math/rand, or map-ordered output
//	               in the packages that produce run records and cell hashes
//	stmaccess      inside tx closures, heap access goes through the Tx
//	addrhygiene    simulated mem.Addr never mixes with host integers
//	recordhygiene  run-record schema fields carry json tags and coverage
//
// Usage:
//
//	tmvet ./...
//	tmvet -run nodeterm,stmaccess ./internal/...
//
// Findings are suppressed per line by the annotation
//
//	//tmvet:allow <analyzer>[,<analyzer>...]: <reason>
//
// with a mandatory reason; scripts/ci.sh gates on zero findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/addrhygiene"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/nodeterm"
	"repro/internal/analysis/recordhygiene"
	"repro/internal/analysis/stmaccess"
)

var all = []*framework.Analyzer{
	addrhygiene.Analyzer,
	nodeterm.Analyzer,
	recordhygiene.Analyzer,
	stmaccess.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	analyzers := all
	if *runList != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := byName[name]
			if a == nil {
				fmt.Fprintf(os.Stderr, "tmvet: unknown analyzer %q (have:", name)
				for _, known := range all {
					fmt.Fprintf(os.Stderr, " %s", known.Name)
				}
				fmt.Fprintln(os.Stderr, ")")
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmvet:", err)
		os.Exit(2)
	}
	pkgs, err := framework.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmvet:", err)
		os.Exit(2)
	}
	diags, err := framework.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tmvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
