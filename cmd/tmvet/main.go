// Command tmvet runs the repository's static analyzers — the lint gate
// behind the determinism and isolation invariants the simulator's
// results depend on:
//
//	nodeterm       no wall clock, global math/rand, or map-ordered output
//	               in the packages that produce run records and cell hashes
//	stmaccess      inside tx closures, heap access goes through the Tx
//	addrhygiene    simulated mem.Addr never mixes with host integers
//	recordhygiene  run-record schema fields carry json tags and coverage
//	txescape       simulated addresses born in a tx closure don't leak
//	               into raw (non-transactional) operations
//	poolhygiene    pooled tx objects return to their pool, and a pool
//	               keeps one recycling discipline for life
//
// Usage:
//
//	tmvet ./...
//	tmvet -run nodeterm,stmaccess ./internal/...
//	tmvet -json ./...
//
// Findings are suppressed per line by the annotation
//
//	//tmvet:allow <analyzer>[,<analyzer>...]: <reason>
//
// with a mandatory reason; an annotation whose analyzer no longer
// fires on that line is itself reported as a stale suppression.
// scripts/ci.sh gates on zero findings. With -json every finding —
// including suppressed ones — is emitted as one JSON object per line
// with its allow status; suppressed findings never affect the exit
// code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/addrhygiene"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/nodeterm"
	"repro/internal/analysis/poolhygiene"
	"repro/internal/analysis/recordhygiene"
	"repro/internal/analysis/stmaccess"
	"repro/internal/analysis/txescape"
)

var all = []*framework.Analyzer{
	addrhygiene.Analyzer,
	nodeterm.Analyzer,
	poolhygiene.Analyzer,
	recordhygiene.Analyzer,
	stmaccess.Analyzer,
	txescape.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	asJSON := flag.Bool("json", false, "emit one JSON object per finding (including suppressed ones) instead of text")
	flag.Parse()

	analyzers := all
	if *runList != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := byName[name]
			if a == nil {
				fmt.Fprintf(os.Stderr, "tmvet: unknown analyzer %q (have:", name)
				for _, known := range all {
					fmt.Fprintf(os.Stderr, " %s", known.Name)
				}
				fmt.Fprintln(os.Stderr, ")")
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmvet:", err)
		os.Exit(2)
	}
	pkgs, err := framework.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmvet:", err)
		os.Exit(2)
	}
	diags, err := framework.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmvet:", err)
		os.Exit(2)
	}
	active := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if !d.Allowed {
			active++
		}
		switch {
		case *asJSON:
			if err := enc.Encode(finding{
				Analyzer: d.Analyzer,
				Pos:      fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Message:  d.Message,
				Allowed:  d.Allowed,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "tmvet:", err)
				os.Exit(2)
			}
		case !d.Allowed:
			fmt.Println(d)
		}
	}
	if active > 0 {
		fmt.Fprintf(os.Stderr, "tmvet: %d finding(s)\n", active)
		os.Exit(1)
	}
}

// finding is the -json output schema: one object per line.
type finding struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed"`
}
