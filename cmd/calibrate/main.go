// Command calibrate runs every allocator-sensitive STAMP application at
// reference scale with 8 threads and prints real time, virtual time and
// abort statistics. It is the tuning loop used while matching the
// paper's shapes; see EXPERIMENTS.md.
package main

import (
	"fmt"

	"repro/cmd/internal/cliflags"
	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"
	"repro/internal/stamp"
	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"
)

func main() {
	for _, app := range []string{"genome", "intruder", "vacation", "yada", "labyrinth", "bayes"} {
		for _, alloc := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
			watch := cliflags.StartStopwatch()
			res, err := stamp.Run(stamp.Config{App: app, Allocator: alloc, Threads: 8, Scale: stamp.Ref})
			if err != nil {
				fmt.Println(app, alloc, "ERR", err)
				continue
			}
			fmt.Printf("%-10s %-9s real=%8v vtime=%7.2fms aborts=%6d rate=%.3f txallocs=%d\n",
				app, alloc, watch.Elapsed(), res.Seconds*1e3,
				res.Tx.Aborts, res.Tx.AbortRate(), res.Tx.AllocsInTx)
		}
	}
}
