// Command tmlayout analyses how each allocator's block placement
// interacts with the STM's ownership-record table and the cache — the
// paper's §5 analysis as a standalone tool.
//
// For a given block size and thread count it allocates a batch of
// blocks per thread and reports, per allocator:
//
//   - how many blocks share an ORT stripe with another block
//     (intra-thread and cross-thread separately);
//   - how many blocks alias to an already-used ORT entry from a
//     *different* stripe (the Glibc 64 MiB-arena effect);
//   - how many blocks share a 64-byte cache line with a block of
//     another thread (false-sharing exposure);
//   - the resulting collision histogram over the ORT.
//
// The per-allocator analyses run as independent sweep cells on the
// -jobs pool and memoize into -cache by configuration hash.
//
// Usage:
//
//	tmlayout [-size 16] [-threads 8] [-blocks 512] [-shift 5] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/cmd/internal/cliflags"
	"repro/internal/alloc"
	"repro/internal/heapscope"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stm"
	"repro/internal/sweep"
	"repro/internal/vtime"
)

// layoutParams is the cell spec: everything that determines a layout
// analysis, so the cache key changes exactly when the analysis would.
type layoutParams struct {
	Allocator string `json:"allocator"`
	Size      uint64 `json:"size"`
	Threads   int    `json:"threads"`
	Blocks    int    `json:"blocks"`
	Shift     uint   `json:"shift"`
	Parallel  bool   `json:"parallel"`
}

func main() {
	var (
		size    = flag.Uint64("size", 16, "block size in bytes")
		threads = flag.Int("threads", 8, "allocating threads")
		blocks  = flag.Int("blocks", 512, "blocks per thread")
		shift   = flag.Uint("shift", 5, "ORT shift amount")
		mode    = flag.String("mode", "parallel", "parallel (contended, via the virtual-time engine) or solo")
		jsonOut = flag.Bool("json", false, "emit the analysis as a machine-readable run record on stdout")
		heapGeo = flag.Bool("heap-geometry", false, "emit each allocator's static size-class/superblock geometry as a tmheap/series/v1 artifact on stdout")
	)
	sw := cliflags.AddSweep(flag.CommandLine)
	cliflags.AddSanitize(flag.CommandLine)
	flag.Parse()

	if *heapGeo {
		if err := writeGeometry(*threads); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	cache, err := sw.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var cells []sweep.Cell
	for _, name := range alloc.Names() {
		p := layoutParams{
			Allocator: name,
			Size:      *size,
			Threads:   *threads,
			Blocks:    *blocks,
			Shift:     *shift,
			Parallel:  *mode == "parallel",
		}
		spec, err := json.Marshal(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cells = append(cells, sweep.Cell{
			Key:  fmt.Sprintf("cli/layout/%s/b%d/t%d/n%d/s%d/%s", name, *size, *threads, *blocks, *shift, *mode),
			Spec: spec,
			Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
				r, err := analyze(p)
				return r, nil, nil, nil, err
			},
		})
	}
	sched := &sweep.Scheduler{Jobs: sw.Jobs, Cache: cache}
	outs, stats := sched.Run(cells)

	table := obs.Table{
		Title: fmt.Sprintf("%d threads x %d blocks of %d bytes, ORT shift %d, %s mode",
			*threads, *blocks, *size, *shift, *mode),
		Columns: []string{"allocator", "stripe-shared", "blocks", "cross-thread stripes",
			"aliased entries", "cross-thread lines", "max/stripe"},
	}
	for i, name := range alloc.Names() {
		out := outs[i]
		if out.Err != nil {
			fmt.Fprintln(os.Stderr, out.Err)
			os.Exit(1)
		}
		var r report
		if err := json.Unmarshal(out.Payload, &r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total := *threads * *blocks
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%d", r.StripeShared),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", r.CrossThreadStripes),
			fmt.Sprintf("%d", r.Aliased),
			fmt.Sprintf("%d", r.CrossThreadLines),
			fmt.Sprintf("%d", r.MaxPerStripe),
		})
	}
	if stats.Cached > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d cells served from cache (%s)\n", stats.Cached, stats.Cells, sw.Dir)
	}

	if *jsonOut {
		record := obs.NewRunRecord("layout")
		record.Title = "Allocator block placement vs ORT stripes and cache lines"
		record.Config = obs.RunConfig{Extra: map[string]string{
			"size":    fmt.Sprintf("%d", *size),
			"threads": fmt.Sprintf("%d", *threads),
			"blocks":  fmt.Sprintf("%d", *blocks),
			"shift":   fmt.Sprintf("%d", *shift),
			"mode":    *mode,
		}}
		record.Sweep = &obs.SweepInfo{
			CellSet:  sweep.CellSetHash(cells),
			Cells:    stats.Cells,
			Executed: stats.Executed,
			Cached:   stats.Cached,
			Jobs:     sw.Jobs,
		}
		record.Tables = []obs.Table{table}
		if err := record.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("layout analysis: %s\n\n", table.Title)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "allocator\tstripe-shared\tcross-thread stripes\taliased entries\tcross-thread lines\tmax/stripe")
	for _, row := range table.Rows {
		fmt.Fprintf(tw, "%s\t%s/%s\t%s\t%s\t%s\t%s\n",
			row[0], row[1], row[2], row[3], row[4], row[5], row[6])
	}
	tw.Flush()
	fmt.Println(`
stripe-shared:        stripe slots where a stripe is touched by more than one block
cross-thread stripes: stripes holding blocks of two different threads (false conflicts)
aliased entries:      ORT entries hit by blocks >1 stripe apart (e.g. 64MB arena aliasing)
cross-thread lines:   64-byte cache lines holding blocks of two threads (false sharing)
max/stripe:           worst-case blocks mapped to one versioned lock`)
}

// writeGeometry emits each allocator's static layout — size-class table
// and superblock/arena granularity — as a tmheap/series/v1 artifact
// with empty sample lists, so static geometry diffs with the same
// tooling as runtime series (tmheap).
func writeGeometry(threads int) error {
	set := heapscope.NewSet("geometry")
	for _, name := range alloc.Names() {
		space := mem.NewSpace()
		a, err := alloc.New(name, space, threads)
		if err != nil {
			return err
		}
		st, ok := alloc.InspectHeap(a)
		if !ok {
			continue
		}
		sr := &heapscope.Series{
			Label:     "geometry/" + name,
			Allocator: name,
			Samples:   []heapscope.Sample{},
			Geometry: &heapscope.Geometry{
				SuperblockBytes: st.SuperblockBytes,
				MinBlock:        st.MinBlock,
				MaxBlock:        st.MaxBlock,
			},
		}
		for _, cl := range st.Classes {
			sr.Classes = append(sr.Classes, cl.Size)
		}
		set.Add(sr)
	}
	return set.WriteJSON(os.Stdout)
}

type report struct {
	StripeShared       int `json:"stripe_shared"`
	CrossThreadStripes int `json:"cross_thread_stripes"`
	Aliased            int `json:"aliased"`
	CrossThreadLines   int `json:"cross_thread_lines"`
	MaxPerStripe       int `json:"max_per_stripe"`
}

func analyze(p layoutParams) (report, error) {
	space := mem.NewSpace()
	a, err := alloc.New(p.Allocator, space, p.Threads)
	if err != nil {
		return report{}, err
	}
	st := stm.New(space, stm.Config{Shift: p.Shift})

	type blk struct {
		addr mem.Addr
		tid  int
	}
	var all []blk
	if p.Parallel {
		// Threads allocate concurrently under the virtual-time engine:
		// Glibc's arena trylock contention creates per-thread arenas,
		// exposing the 64 MiB aliasing of the paper's §5.2.
		e := vtime.NewEngine(space, p.Threads, vtime.Config{})
		perThread := make([][]mem.Addr, p.Threads)
		e.Run(func(th *vtime.Thread) {
			for i := 0; i < p.Blocks; i++ {
				perThread[th.ID()] = append(perThread[th.ID()], a.Malloc(th, p.Size))
				th.Tick(40) // space the requests out, as real work would
			}
		})
		for t, addrs := range perThread {
			for _, ad := range addrs {
				all = append(all, blk{addr: ad, tid: t})
			}
		}
	} else {
		// Interleaved round-robin allocation on one uncontended thread
		// sequence (Glibc keeps everyone on the main arena).
		ths := make([]*vtime.Thread, p.Threads)
		for t := range ths {
			ths[t] = vtime.Solo(space, t, nil)
		}
		for i := 0; i < p.Blocks; i++ {
			for t := 0; t < p.Threads; t++ {
				all = append(all, blk{addr: a.Malloc(ths[t], p.Size), tid: t})
			}
		}
	}

	// ORT stripe statistics. Key stripes by the address range they
	// represent (addr >> shift) to separate sharing from aliasing.
	type stripeInfo struct {
		count int
		tids  map[int]bool
	}
	stripes := map[uint64]*stripeInfo{} // addr>>shift -> info
	entries := map[uint64]map[uint64]bool{}
	stripeSz := uint64(1) << p.Shift
	for _, b := range all {
		// A block covers every stripe its bytes touch; a 48-byte block
		// with shift 5 spans two stripes (the paper's rbtree case).
		first := uint64(b.addr) >> p.Shift
		last := (uint64(b.addr) + p.Size - 1) >> p.Shift
		for sk := first; sk <= last; sk++ {
			si := stripes[sk]
			if si == nil {
				si = &stripeInfo{tids: map[int]bool{}}
				stripes[sk] = si
			}
			si.count++
			si.tids[b.tid] = true
			e := st.OrtIndex(mem.Addr(sk * stripeSz))
			if entries[e] == nil {
				entries[e] = map[uint64]bool{}
			}
			entries[e][sk] = true
		}
	}
	var r report
	for _, si := range stripes {
		if si.count > 1 {
			r.StripeShared += si.count
		}
		if len(si.tids) > 1 {
			r.CrossThreadStripes++
		}
		if si.count > r.MaxPerStripe {
			r.MaxPerStripe = si.count
		}
	}
	for _, sks := range entries {
		if len(sks) > 1 {
			r.Aliased++
		}
	}
	// Cache line sharing across threads.
	lines := map[uint64]map[int]bool{}
	for _, b := range all {
		for lk := uint64(b.addr) >> 6; lk <= (uint64(b.addr)+p.Size-1)>>6; lk++ {
			if lines[lk] == nil {
				lines[lk] = map[int]bool{}
			}
			lines[lk][b.tid] = true
		}
	}
	for _, tids := range lines {
		if len(tids) > 1 {
			r.CrossThreadLines++
		}
	}
	return r, nil
}
