// Command tmlayout analyses how each allocator's block placement
// interacts with the STM's ownership-record table and the cache — the
// paper's §5 analysis as a standalone tool.
//
// For a given block size and thread count it allocates a batch of
// blocks per thread and reports, per allocator:
//
//   - how many blocks share an ORT stripe with another block
//     (intra-thread and cross-thread separately);
//   - how many blocks alias to an already-used ORT entry from a
//     *different* stripe (the Glibc 64 MiB-arena effect);
//   - how many blocks share a 64-byte cache line with a block of
//     another thread (false-sharing exposure);
//   - the resulting collision histogram over the ORT.
//
// Usage:
//
//	tmlayout [-size 16] [-threads 8] [-blocks 512] [-shift 5] [-json]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func main() {
	var (
		size    = flag.Uint64("size", 16, "block size in bytes")
		threads = flag.Int("threads", 8, "allocating threads")
		blocks  = flag.Int("blocks", 512, "blocks per thread")
		shift   = flag.Uint("shift", 5, "ORT shift amount")
		mode    = flag.String("mode", "parallel", "parallel (contended, via the virtual-time engine) or solo")
		jsonOut = flag.Bool("json", false, "emit the analysis as a machine-readable run record on stdout")
	)
	flag.Parse()

	table := obs.Table{
		Title: fmt.Sprintf("%d threads x %d blocks of %d bytes, ORT shift %d, %s mode",
			*threads, *blocks, *size, *shift, *mode),
		Columns: []string{"allocator", "stripe-shared", "blocks", "cross-thread stripes",
			"aliased entries", "cross-thread lines", "max/stripe"},
	}
	for _, name := range alloc.Names() {
		r, err := analyze(name, *size, *threads, *blocks, *shift, *mode == "parallel")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total := *threads * *blocks
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%d", r.stripeShared),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", r.crossThreadStripes),
			fmt.Sprintf("%d", r.aliased),
			fmt.Sprintf("%d", r.crossThreadLines),
			fmt.Sprintf("%d", r.maxPerStripe),
		})
	}

	if *jsonOut {
		record := &obs.RunRecord{
			Schema:     obs.RunRecordSchema,
			Experiment: "layout",
			Title:      "Allocator block placement vs ORT stripes and cache lines",
			Config: obs.RunConfig{Extra: map[string]string{
				"size":    fmt.Sprintf("%d", *size),
				"threads": fmt.Sprintf("%d", *threads),
				"blocks":  fmt.Sprintf("%d", *blocks),
				"shift":   fmt.Sprintf("%d", *shift),
				"mode":    *mode,
			}},
			Tables: []obs.Table{table},
		}
		if err := record.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("layout analysis: %s\n\n", table.Title)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "allocator\tstripe-shared\tcross-thread stripes\taliased entries\tcross-thread lines\tmax/stripe")
	for _, row := range table.Rows {
		fmt.Fprintf(tw, "%s\t%s/%s\t%s\t%s\t%s\t%s\n",
			row[0], row[1], row[2], row[3], row[4], row[5], row[6])
	}
	tw.Flush()
	fmt.Println(`
stripe-shared:        stripe slots where a stripe is touched by more than one block
cross-thread stripes: stripes holding blocks of two different threads (false conflicts)
aliased entries:      ORT entries hit by blocks >1 stripe apart (e.g. 64MB arena aliasing)
cross-thread lines:   64-byte cache lines holding blocks of two threads (false sharing)
max/stripe:           worst-case blocks mapped to one versioned lock`)
}

type report struct {
	stripeShared       int
	crossThreadStripes int
	aliased            int
	crossThreadLines   int
	maxPerStripe       int
}

func analyze(name string, size uint64, threads, blocks int, shift uint, parallel bool) (report, error) {
	space := mem.NewSpace()
	a, err := alloc.New(name, space, threads)
	if err != nil {
		return report{}, err
	}
	st := stm.New(space, stm.Config{Shift: shift})

	type blk struct {
		addr mem.Addr
		tid  int
	}
	var all []blk
	if parallel {
		// Threads allocate concurrently under the virtual-time engine:
		// Glibc's arena trylock contention creates per-thread arenas,
		// exposing the 64 MiB aliasing of the paper's §5.2.
		e := vtime.NewEngine(space, threads, vtime.Config{})
		perThread := make([][]mem.Addr, threads)
		e.Run(func(th *vtime.Thread) {
			for i := 0; i < blocks; i++ {
				perThread[th.ID()] = append(perThread[th.ID()], a.Malloc(th, size))
				th.Tick(40) // space the requests out, as real work would
			}
		})
		for t, addrs := range perThread {
			for _, ad := range addrs {
				all = append(all, blk{addr: ad, tid: t})
			}
		}
	} else {
		// Interleaved round-robin allocation on one uncontended thread
		// sequence (Glibc keeps everyone on the main arena).
		ths := make([]*vtime.Thread, threads)
		for t := range ths {
			ths[t] = vtime.Solo(space, t, nil)
		}
		for i := 0; i < blocks; i++ {
			for t := 0; t < threads; t++ {
				all = append(all, blk{addr: a.Malloc(ths[t], size), tid: t})
			}
		}
	}

	// ORT stripe statistics. Key stripes by the address range they
	// represent (addr >> shift) to separate sharing from aliasing.
	type stripeInfo struct {
		count int
		tids  map[int]bool
	}
	stripes := map[uint64]*stripeInfo{} // addr>>shift -> info
	entries := map[uint64]map[uint64]bool{}
	stripeSz := uint64(1) << shift
	for _, b := range all {
		// A block covers every stripe its bytes touch; a 48-byte block
		// with shift 5 spans two stripes (the paper's rbtree case).
		first := uint64(b.addr) >> shift
		last := (uint64(b.addr) + size - 1) >> shift
		for sk := first; sk <= last; sk++ {
			si := stripes[sk]
			if si == nil {
				si = &stripeInfo{tids: map[int]bool{}}
				stripes[sk] = si
			}
			si.count++
			si.tids[b.tid] = true
			e := st.OrtIndex(mem.Addr(sk * stripeSz))
			if entries[e] == nil {
				entries[e] = map[uint64]bool{}
			}
			entries[e][sk] = true
		}
	}
	var r report
	for _, si := range stripes {
		if si.count > 1 {
			r.stripeShared += si.count
		}
		if len(si.tids) > 1 {
			r.crossThreadStripes++
		}
		if si.count > r.maxPerStripe {
			r.maxPerStripe = si.count
		}
	}
	for _, sks := range entries {
		if len(sks) > 1 {
			r.aliased++
		}
	}
	// Cache line sharing across threads.
	lines := map[uint64]map[int]bool{}
	for _, b := range all {
		for lk := uint64(b.addr) >> 6; lk <= (uint64(b.addr)+size-1)>>6; lk++ {
			if lines[lk] == nil {
				lines[lk] = map[int]bool{}
			}
			lines[lk][b.tid] = true
		}
	}
	for _, tids := range lines {
		if len(tids) > 1 {
			r.crossThreadLines++
		}
	}
	return r, nil
}
