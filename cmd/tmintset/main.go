// Command tmintset runs the paper's synthetic benchmark (§5): threads
// updating or searching a transactional set held in a sorted linked
// list, a hash set or a red-black tree, under a chosen allocator — with
// an optional hybrid-TM mode for the hash set.
//
// Usage:
//
//	tmintset -kind linkedlist -alloc glibc -threads 8 -updates 60
//	tmintset -kind hashset -alloc tcmalloc -threads 8 -hytm
//	tmintset -kind rbtree -alloc hoard -cache .tmcache -json out/run.json
//
// The run executes as one sweep cell, so -cache memoizes it by
// configuration hash; tracing (-trace / -metrics) forces a live run,
// since a cache hit cannot replay events.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/cmd/internal/cliflags"
	"repro/internal/heapscope"
	"repro/internal/intset"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stm"
	"repro/internal/sweep"
)

func main() {
	var (
		kind      = flag.String("kind", "linkedlist", "structure: linkedlist, hashset, rbtree")
		name      = flag.String("alloc", "glibc", "allocator: glibc hoard tbb tcmalloc")
		threads   = flag.Int("threads", 8, "logical threads (1..8)")
		updates   = flag.Int("updates", 60, "update percentage (0, 20, 60)")
		initial   = flag.Int("initial", 0, "initial set size (0 = paper default 4096)")
		keys      = flag.Int("range", 0, "key range (0 = 2x initial)")
		ops       = flag.Int("ops", 0, "operations per thread (0 = default)")
		shift     = flag.Uint("shift", 0, "ORT shift amount (0 = default 5)")
		design    = flag.String("design", "etl-wb", "STM design: etl-wb, etl-wt, ctl")
		cacheTx   = flag.Bool("cachetx", false, "deprecated alias for -pool cache (paper §6.2 tx-object caching)")
		hytm      = flag.Bool("hytm", false, "run under the hybrid HTM (hashset only)")
		seed      = flag.Uint64("seed", 0, "workload seed")
		seedUAF   = flag.Bool("seed-uaf", false, "plant a use-after-free in the measurement phase (sanitizer demo)")
		raceSim   = flag.Bool("race-sim", false, "attach the happens-before race checker to the run")
		seedRace  = flag.Bool("seed-race", false, "plant an allocator-metadata race in the measurement phase (race-checker demo; needs -threads >= 2)")
		conf      = flag.Bool("conflict", false, "attach the abort-forensics observatory to the run")
		seedAlias = flag.Bool("seed-alias", false, "plant a choreographed ORT stripe-aliasing pair in the measurement phase (forensics demo; needs -threads >= 2)")
		ortBits   = flag.Uint("ort-bits", 0, "log2 of the ORT entry count (0 = default; -seed-alias defaults it to 12)")
	)
	rob := cliflags.AddRobustness(flag.CommandLine)
	pool := cliflags.AddPool(flag.CommandLine)
	sw := cliflags.AddSweep(flag.CommandLine)
	outp := cliflags.AddOutput(flag.CommandLine)
	cliflags.AddSanitize(flag.CommandLine)
	pr := cliflags.AddProfile(flag.CommandLine)
	hp := cliflags.AddHeap(flag.CommandLine)
	flag.Parse()

	var d stm.Design
	switch *design {
	case "etl-wb":
		d = stm.ETLWriteBack
	case "etl-wt":
		d = stm.ETLWriteThrough
	case "ctl":
		d = stm.CTL
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
	rec := outp.NewRecorder()
	cfg := intset.Config{
		Kind:         intset.Kind(*kind),
		Allocator:    *name,
		Threads:      *threads,
		InitialSize:  *initial,
		KeyRange:     *keys,
		UpdatePct:    *updates,
		OpsPerThread: *ops,
		Shift:        *shift,
		Design:       d,
		CacheTx:      *cacheTx,
		Pool:         *pool,
		Seed:         *seed,
		CM:           rob.CM,
		RetryCap:     rob.RetryCap,
		Fault:        rob.Fault,
		Deadline:     rob.Deadline,
		Pmem:         rob.Pmem,
		Crash:        rob.Crash,
		SeedUAF:      *seedUAF,
		SeedRace:     *seedRace,
		Race:         *raceSim,
		SeedAlias:    *seedAlias,
		OrtBits:      *ortBits,
		Conflict:     *conf,
	}

	cache, err := sw.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil || pr.Enabled() || hp.Enabled() {
		cache = nil // a cache hit could not replay the trace, profile or heap series
	}
	if rob.Crash != "" {
		cache = nil // a crash cell's verdict must come from recovery actually running
	}
	if *raceSim {
		cache = nil // a race verdict must come from the checker observing the execution
	}
	if *conf {
		cache = nil // forensics describe an actual execution, never a replayed record
	}
	var pp *prof.Profiler
	if pr.Enabled() {
		pp = prof.New()
		pp.SetRecorder(rec)
	}
	var hc *heapscope.Collector
	if hp.Enabled() {
		hc = heapscope.New(hp.Cadence)
	}
	spec, err := json.Marshal(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mode := "stm"
	if *hytm {
		mode = "hytm"
	}
	key := fmt.Sprintf("cli/intset/%s/%s/%s/t%d/u%d/%s",
		mode, *kind, *name, *threads, *updates, *design)
	if *pool != stm.PoolNone {
		key += "/p" + pool.String()
	}
	if *seedAlias || *ortBits != 0 {
		key += fmt.Sprintf("/sa%v-ob%d", *seedAlias, *ortBits)
	}
	cells := []sweep.Cell{{
		Key:  key,
		Spec: spec,
		Seed: *seed,
		Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
			c := cfg
			c.Obs = rec
			c.Prof = pp
			c.Heap = hc
			var payload any
			var err error
			if *hytm {
				payload, err = intset.RunHyTM(c)
			} else {
				payload, err = intset.Run(c)
			}
			if err != nil {
				return nil, nil, nil, nil, err
			}
			var dl *obs.Delta
			if rec != nil {
				dl = rec.Delta()
			}
			var pf *prof.Profile
			if pp != nil {
				pf = pp.Profile()
				pf.Label = key
			}
			var sr *heapscope.Series
			if hc != nil {
				sr = hc.Series(key)
			}
			return payload, dl, pf, sr, nil
		},
	}}
	sched := &sweep.Scheduler{Jobs: sw.Jobs, Cache: cache}
	outs, stats := sched.Run(cells)
	out := outs[0]
	if out.Err != nil {
		fmt.Fprintln(os.Stderr, out.Err)
		os.Exit(1)
	}
	if out.Cached {
		fmt.Fprintf(os.Stderr, "cached result (%s, hash %.12s)\n", sw.Dir, out.Hash)
	}

	record := obs.NewRunRecord("intset/" + mode)
	record.Title = fmt.Sprintf("%s on %s, %d thread(s), %d%% updates (%s)", *kind, *name, *threads, *updates, mode)
	record.Config = obs.RunConfig{
		Seed: *seed,
		Extra: map[string]string{
			"kind": *kind, "alloc": *name,
			"threads": fmt.Sprintf("%d", *threads),
			"updates": fmt.Sprintf("%d", *updates),
			"design":  *design,
			"mode":    mode,
			"cm":      rob.CM.String(),
			"pool":    pool.String(),
		},
	}
	record.Sweep = &obs.SweepInfo{
		CellSet:  sweep.CellSetHash(cells),
		Cells:    stats.Cells,
		Executed: stats.Executed,
		Cached:   stats.Cached,
		Jobs:     sw.Jobs,
	}
	if out.Profile != nil {
		record.Profile = out.Profile.Info()
		if err := pr.Write(out.Profile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if out.Heap != nil {
		set := heapscope.NewSet("intset/" + mode)
		set.Add(out.Heap)
		record.Heap = set.Info()
		if err := hp.Write(set); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	exitFailed := false
	if *hytm {
		var res intset.HyTMResult
		if err := json.Unmarshal(out.Payload, &res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "mode\thybrid TM (HTM + lock-elision fallback)\n")
		fmt.Fprintf(tw, "throughput\t%.0f tx per modelled second\n", res.Throughput)
		fmt.Fprintf(tw, "time\t%.4f ms for %d ops\n", res.Seconds*1e3, res.Ops)
		st := res.HTM
		fmt.Fprintf(tw, "HTM\t%d commits, %d aborts (conflict %d, capacity %d, lock %d, alloc %d, timer %d), %d fallbacks\n",
			st.HTMCommits, st.HTMAborts, st.ByReason[0], st.ByReason[1], st.ByReason[2], st.ByReason[3], st.ByReason[4], st.Fallbacks)
		fmt.Fprintf(tw, "allocator\t%d mallocs, %d frees, %d lock acquisitions (%d contended)\n",
			res.Alloc.Mallocs, res.Alloc.Frees, res.Alloc.LockAcquires, res.Alloc.LockContended)
		tw.Flush()
		record.Tables = []obs.Table{{
			Title:   "Summary",
			Columns: []string{"Metric", "Value"},
			Rows: [][]string{
				{"throughput (tx/s)", fmt.Sprintf("%.0f", res.Throughput)},
				{"HTM commits", fmt.Sprintf("%d", st.HTMCommits)},
				{"HTM aborts", fmt.Sprintf("%d", st.HTMAborts)},
				{"fallbacks", fmt.Sprintf("%d", st.Fallbacks)},
			},
		}}
	} else {
		var res intset.Result
		if err := json.Unmarshal(out.Payload, &res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "mode\tSTM %s, shift %d, CM %s\n", d, res.Config.Shift, rob.CM)
		if res.Status != "" && res.Status != obs.StatusOK {
			fmt.Fprintf(tw, "status\t%s: %s\n", res.Status, res.Failure)
		}
		if r := res.Recovery; r != nil {
			if r.Crashed {
				fmt.Fprintf(tw, "durability\tcrash at cycle %d (%s phase); recovery %s: %d logs replayed, %d torn, %d/%d meta words repaired\n",
					r.CrashCycle, r.CrashPhase, r.Verdict, r.Replayed, r.TornLogs, r.TornMeta, r.MetaWords)
			} else {
				fmt.Fprintf(tw, "durability\t%d flushes, %d fences, %d log appends, %d metadata records\n",
					r.Flushes, r.Fences, r.LogAppends, r.MetaRecs)
			}
			record.Recovery = r
		}
		if p := res.Pool; p != nil {
			fmt.Fprintf(tw, "pooling\t%s: %d hits, %d misses, %d returns (%d held at end)\n",
				p.Discipline, p.Hits, p.Misses, p.Returns, p.Held)
			record.Pool = p
		}
		if r := res.Race; r != nil {
			if r.Findings > 0 {
				fmt.Fprintf(tw, "race\t%d finding(s) over %d blocks / %d words; first: %s\n",
					r.Findings, r.Blocks, r.Words, r.First)
			} else {
				fmt.Fprintf(tw, "race\tclean: %d events over %d blocks / %d words\n",
					r.Events, r.Blocks, r.Words)
			}
			record.Race = r
		}
		if c := res.Conflict; c != nil {
			fmt.Fprintf(tw, "conflicts\t%d aborts dissected: %d true, %d false (%d same-line, %d cross-block), %d alias, %d metadata, %d other\n",
				c.Events, c.TrueSharing, c.FalseSharing, c.SameLine, c.CrossBlock, c.StripeAlias, c.Metadata, c.Other)
			fmt.Fprintf(tw, "wasted\t%d cycles (true %d, false %d, alias %d, metadata %d, other %d); longest kill chain %d\n",
				c.WastedCycles, c.WastedTrue, c.WastedFalse, c.WastedAlias, c.WastedMeta, c.WastedOther, c.LongestChain)
			if c.TopSite != "" {
				fmt.Fprintf(tw, "blame\ttop site %s (%d wasted cycles); top offender %s (%d hits)\n",
					c.TopSite, c.TopSiteWasted, c.TopOffender, c.TopOffenderHits)
			}
			if c.First != "" {
				fmt.Fprintf(tw, "first\t%s\n", c.First)
			}
			record.Conflict = c
		}
		fmt.Fprintf(tw, "throughput\t%.0f tx per modelled second\n", res.Throughput)
		fmt.Fprintf(tw, "time\t%.4f ms for %d ops\n", res.Seconds*1e3, res.Ops)
		fmt.Fprintf(tw, "transactions\t%d commits, %d aborts (%.1f%%), %d false aborts\n",
			res.Tx.Commits, res.Tx.Aborts, res.Tx.AbortRate()*100, res.Tx.FalseAborts)
		if res.Tx.Irrevocables > 0 || res.Tx.BackoffCycles > 0 {
			fmt.Fprintf(tw, "robustness\t%d irrevocable fallbacks, %d backoff cycles, worst streak %d aborts\n",
				res.Tx.Irrevocables, res.Tx.BackoffCycles, res.Tx.MaxConsecAborts)
		}
		fmt.Fprintf(tw, "cache\t%.2f%% L1D miss, %d false-sharing misses\n",
			res.L1Miss*100, res.CacheTotal.FalseShare)
		fmt.Fprintf(tw, "allocator\t%d mallocs (%d failed), %d frees, %d lock acquisitions (%d contended)\n",
			res.AllocStats.Mallocs, res.AllocStats.FailedMallocs, res.AllocStats.Frees,
			res.AllocStats.LockAcquires, res.AllocStats.LockContended)
		tw.Flush()
		record.Status = res.Status
		record.Failure = res.Failure
		record.Tables = []obs.Table{{
			Title:   "Summary",
			Columns: []string{"Metric", "Value"},
			Rows: [][]string{
				{"throughput (tx/s)", fmt.Sprintf("%.0f", res.Throughput)},
				{"commits", fmt.Sprintf("%d", res.Tx.Commits)},
				{"aborts", fmt.Sprintf("%d", res.Tx.Aborts)},
				{"false aborts", fmt.Sprintf("%d", res.Tx.FalseAborts)},
				{"L1 miss", fmt.Sprintf("%.4f", res.L1Miss)},
			},
		}}
		exitFailed = res.Status == obs.StatusFailed
	}

	if outp.JSON != "" {
		record.Attach(rec)
		if err := cliflags.WriteTo(outp.JSON, record.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := outp.WriteMetrics(rec, stats.WritePrometheus); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := outp.WriteTrace(rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if exitFailed {
		os.Exit(1)
	}
}
