// Command tmintset runs the paper's synthetic benchmark (§5): threads
// updating or searching a transactional set held in a sorted linked
// list, a hash set or a red-black tree, under a chosen allocator — with
// an optional hybrid-TM mode for the hash set.
//
// Usage:
//
//	tmintset -kind linkedlist -alloc glibc -threads 8 -updates 60
//	tmintset -kind hashset -alloc tcmalloc -threads 8 -hytm
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/intset"
	"repro/internal/obs"
	"repro/internal/stm"
)

func main() {
	var (
		kind     = flag.String("kind", "linkedlist", "structure: linkedlist, hashset, rbtree")
		name     = flag.String("alloc", "glibc", "allocator: glibc hoard tbb tcmalloc")
		threads  = flag.Int("threads", 8, "logical threads (1..8)")
		updates  = flag.Int("updates", 60, "update percentage (0, 20, 60)")
		initial  = flag.Int("initial", 0, "initial set size (0 = paper default 4096)")
		keys     = flag.Int("range", 0, "key range (0 = 2x initial)")
		ops      = flag.Int("ops", 0, "operations per thread (0 = default)")
		shift    = flag.Uint("shift", 0, "ORT shift amount (0 = default 5)")
		design   = flag.String("design", "etl-wb", "STM design: etl-wb, etl-wt, ctl")
		cacheTx  = flag.Bool("cachetx", false, "STM-level tx-object caching (paper §6.2)")
		hytm     = flag.Bool("hytm", false, "run under the hybrid HTM (hashset only)")
		seed     = flag.Uint64("seed", 0, "workload seed")
		cmName   = flag.String("cm", "", "contention manager: suicide (default), backoff, karma, aggressive")
		retryCap = flag.Uint64("retry-cap", 0, "aborts before the irrevocable fallback (0 = default)")
		faultStr = flag.String("fault", "", "fault plan, e.g. 'oom@10x2,lat%5:300,storm@20000:24000,quota@1048576'")
		deadline = flag.Uint64("deadline", 0, "virtual-cycle watchdog bound per phase (0 = none)")
	)
	flag.Parse()

	var d stm.Design
	switch *design {
	case "etl-wb":
		d = stm.ETLWriteBack
	case "etl-wt":
		d = stm.ETLWriteThrough
	case "ctl":
		d = stm.CTL
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
	cm, err := stm.ParseCM(*cmName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := intset.Config{
		Kind:         intset.Kind(*kind),
		Allocator:    *name,
		Threads:      *threads,
		InitialSize:  *initial,
		KeyRange:     *keys,
		UpdatePct:    *updates,
		OpsPerThread: *ops,
		Shift:        *shift,
		Design:       d,
		CacheTx:      *cacheTx,
		Seed:         *seed,
		CM:           cm,
		RetryCap:     *retryCap,
		Fault:        *faultStr,
		Deadline:     *deadline,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if *hytm {
		res, err := intset.RunHyTM(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "mode\thybrid TM (HTM + lock-elision fallback)\n")
		fmt.Fprintf(tw, "throughput\t%.0f tx per modelled second\n", res.Throughput)
		fmt.Fprintf(tw, "time\t%.4f ms for %d ops\n", res.Seconds*1e3, res.Ops)
		st := res.HTM
		fmt.Fprintf(tw, "HTM\t%d commits, %d aborts (conflict %d, capacity %d, lock %d, alloc %d, timer %d), %d fallbacks\n",
			st.HTMCommits, st.HTMAborts, st.ByReason[0], st.ByReason[1], st.ByReason[2], st.ByReason[3], st.ByReason[4], st.Fallbacks)
		fmt.Fprintf(tw, "allocator\t%d mallocs, %d frees, %d lock acquisitions (%d contended)\n",
			res.Alloc.Mallocs, res.Alloc.Frees, res.Alloc.LockAcquires, res.Alloc.LockContended)
		tw.Flush()
		return
	}
	res, err := intset.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(tw, "mode\tSTM %s, shift %d, CM %s\n", d, res.Config.Shift, cm)
	if res.Status != "" && res.Status != obs.StatusOK {
		fmt.Fprintf(tw, "status\t%s: %s\n", res.Status, res.Failure)
	}
	fmt.Fprintf(tw, "throughput\t%.0f tx per modelled second\n", res.Throughput)
	fmt.Fprintf(tw, "time\t%.4f ms for %d ops\n", res.Seconds*1e3, res.Ops)
	fmt.Fprintf(tw, "transactions\t%d commits, %d aborts (%.1f%%), %d false aborts\n",
		res.Tx.Commits, res.Tx.Aborts, res.Tx.AbortRate()*100, res.Tx.FalseAborts)
	if res.Tx.Irrevocables > 0 || res.Tx.BackoffCycles > 0 {
		fmt.Fprintf(tw, "robustness\t%d irrevocable fallbacks, %d backoff cycles, worst streak %d aborts\n",
			res.Tx.Irrevocables, res.Tx.BackoffCycles, res.Tx.MaxConsecAborts)
	}
	fmt.Fprintf(tw, "cache\t%.2f%% L1D miss, %d false-sharing misses\n",
		res.L1Miss*100, res.CacheTotal.FalseShare)
	fmt.Fprintf(tw, "allocator\t%d mallocs (%d failed), %d frees, %d lock acquisitions (%d contended)\n",
		res.AllocStats.Mallocs, res.AllocStats.FailedMallocs, res.AllocStats.Frees,
		res.AllocStats.LockAcquires, res.AllocStats.LockContended)
	tw.Flush()
	if res.Status == obs.StatusFailed {
		os.Exit(1)
	}
}
