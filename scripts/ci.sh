#!/bin/sh
# ci.sh — the repository's tier-1 gate, runnable locally or in CI.
#
#   scripts/ci.sh
#
# Steps: formatting, vet, build, the full test suite, and a -race pass
# over the packages whose tests don't depend on the virtual-time
# engine's one-goroutine-at-a-time determinism (the engine serializes
# execution by construction, so -race on those packages only slows the
# suite down without adding coverage).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== tmvet =="
# The repository's own static analyzers (determinism, STM isolation,
# address hygiene, record-schema coverage) must report zero findings;
# suppressions live in the source as //tmvet:allow annotations with
# mandatory reasons.
go run ./cmd/tmvet ./...

echo "== go test -race (virtual-time-independent packages) =="
# stm and mem ride along: their suites run mostly single-threaded under
# the engine, but TestMain arms the sanitizer, whose shadow-map
# bookkeeping must stay race-free where host goroutines do appear.
go test -race ./internal/obs ./internal/mem ./internal/sim ./internal/cachesim ./internal/stm

echo "== go test -race (sweep scheduler) =="
# The scheduler is the one component that genuinely runs host
# goroutines concurrently; its deque/steal/cache paths get a dedicated
# race pass.
go test -race ./internal/sweep

echo "== fault-injection smoke =="
# Every STAMP app must survive an injected-OOM plan with the graceful-
# degradation ladder engaged, still emitting a valid run record, and two
# runs of the same seeded fault plan must be byte-identical.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/tmstamp -app yada -alloc tbb -threads 2 \
    -cm backoff -retry-cap 64 -fault 'oom@10x2,oom%1,lat%2:200' -deadline 2000000000 \
    -seed 7 -json "$tmpdir/fault1.json" >/dev/null
go run ./cmd/tmstamp -app yada -alloc tbb -threads 2 \
    -cm backoff -retry-cap 64 -fault 'oom@10x2,oom%1,lat%2:200' -deadline 2000000000 \
    -seed 7 -json "$tmpdir/fault2.json" >/dev/null
cmp "$tmpdir/fault1.json" "$tmpdir/fault2.json" || {
    echo "fault-injection run records differ for the same seed" >&2
    exit 1
}
grep -q '"status"' "$tmpdir/fault1.json" || {
    echo "fault-injection run record carries no status" >&2
    exit 1
}

echo "== parallel-determinism gate =="
# A wide work-stealing pool must produce byte-identical results to a
# serial run. Only the recorded pool width ("jobs", execution
# provenance like wall-clock time) may differ between the two records.
go run ./cmd/tmrepro -run fig1 -jobs 1 -out "$tmpdir/j1" >"$tmpdir/j1.txt"
go run ./cmd/tmrepro -run fig1 -jobs 8 -out "$tmpdir/j8" >"$tmpdir/j8.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/j8.txt" || {
    echo "tmrepro stdout differs between -jobs 1 and -jobs 8" >&2
    exit 1
}
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/j1/BENCH_fig1.json" >"$tmpdir/j1.norm"
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/j8/BENCH_fig1.json" >"$tmpdir/j8.norm"
cmp "$tmpdir/j1.norm" "$tmpdir/j8.norm" || {
    echo "run records differ between -jobs 1 and -jobs 8" >&2
    exit 1
}

echo "== tx-pooling byte-identity gate =="
# Turning the pooling axis off explicitly (-pool none) must be
# byte-for-byte the same as never mentioning it, at every pool width:
# the discipline default is "no override", so cell keys, derived seeds
# and run records may not move. The j1 artifacts above are the plain
# baseline.
go run ./cmd/tmrepro -run fig1 -jobs 1 -pool none -out "$tmpdir/pn1" >"$tmpdir/pn1.txt"
go run ./cmd/tmrepro -run fig1 -jobs 4 -pool none -out "$tmpdir/pn4" >"$tmpdir/pn4.txt"
go run ./cmd/tmrepro -run fig1 -jobs 8 -pool none -out "$tmpdir/pn8" >"$tmpdir/pn8.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/pn1.txt" || {
    echo "tmrepro stdout differs with -pool none" >&2
    exit 1
}
for j in 1 4 8; do
    sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/pn$j/BENCH_fig1.json" >"$tmpdir/pn$j.norm"
    cmp "$tmpdir/j1.norm" "$tmpdir/pn$j.norm" || {
        echo "run records differ between plain and -pool none at -jobs $j" >&2
        exit 1
    }
done

echo "== alloc-budget gate =="
# The PR 8 zero-alloc contract, re-run explicitly and uncached: the STM
# begin/load/store/commit path, the obs emitters and prof.Begin/End pin
# at zero steady-state host allocs, and the flagship workload stays
# within its 1,000 allocs/run budget (down from 9,271 before pooling).
go test -count=1 -run 'AllocBudget|SteadyStateAlloc' \
    ./internal/stm ./internal/obs ./internal/prof

echo "== cache round-trip gate =="
# A second invocation against a warm cache must execute nothing and
# reproduce the same stdout.
go run ./cmd/tmrepro -run tab4 -cache "$tmpdir/cellcache" >"$tmpdir/c1.txt" 2>/dev/null
go run ./cmd/tmrepro -run tab4 -cache "$tmpdir/cellcache" >"$tmpdir/c2.txt" 2>"$tmpdir/c2.err"
cmp "$tmpdir/c1.txt" "$tmpdir/c2.txt" || {
    echo "cached run differs from executed run" >&2
    exit 1
}
grep -q ' 0 executed' "$tmpdir/c2.err" || {
    echo "second -cache invocation executed cells instead of hitting the cache" >&2
    exit 1
}

echo "== sanitizer byte-identity gate =="
# The shadow-memory sanitizer is pure metadata: arming it must change
# neither stdout nor the run-record bytes of a clean run. (The j1
# artifacts from the parallel-determinism gate are the unsanitized
# baseline; jobs provenance is normalized as above.)
go run ./cmd/tmrepro -run fig1 -jobs 8 -sanitize -out "$tmpdir/san" >"$tmpdir/san.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/san.txt" || {
    echo "tmrepro stdout differs with -sanitize" >&2
    exit 1
}
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/san/BENCH_fig1.json" >"$tmpdir/san.norm"
cmp "$tmpdir/j1.norm" "$tmpdir/san.norm" || {
    echo "run records differ with -sanitize" >&2
    exit 1
}

echo "== profiler byte-identity gate =="
# The cycle profiler is pure attribution: -profile must change neither
# stdout nor cell results (hooks read the virtual clocks, they never
# tick them), and the same-seed profile artifact must be byte-identical
# across pool widths. The j1 stdout from the parallel-determinism gate
# is the profiler-off baseline.
go run ./cmd/tmrepro -run fig1 -jobs 1 -profile "$tmpdir/p1.json" >"$tmpdir/pj1.txt"
go run ./cmd/tmrepro -run fig1 -jobs 8 -profile "$tmpdir/p8.json" >"$tmpdir/pj8.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/pj1.txt" || {
    echo "tmrepro stdout differs with -profile" >&2
    exit 1
}
cmp "$tmpdir/pj1.txt" "$tmpdir/pj8.txt" || {
    echo "profiled stdout differs between -jobs 1 and -jobs 8" >&2
    exit 1
}
cmp "$tmpdir/p1.json" "$tmpdir/p8.json" || {
    echo "profile artifacts differ between -jobs 1 and -jobs 8" >&2
    exit 1
}

echo "== profiler toolchain gate =="
# tmprof must read the artifact back, and a profile diffed against the
# other pool width's artifact must partition both totals exactly.
# tmvet runs again scoped to the profiler packages so a future
# suppression elsewhere can't mask a determinism finding here.
go run ./cmd/tmprof top "$tmpdir/p1.json" >"$tmpdir/top.txt"
grep -q 'virtual cycles' "$tmpdir/top.txt" || {
    echo "tmprof top produced no cycle summary" >&2
    exit 1
}
go run ./cmd/tmprof diff "$tmpdir/p1.json" "$tmpdir/p8.json" >"$tmpdir/pdiff.txt"
grep -q 'totals reconcile' "$tmpdir/pdiff.txt" || {
    echo "tmprof diff totals failed to reconcile" >&2
    exit 1
}
go run ./cmd/tmvet ./internal/prof ./cmd/tmprof

echo "== heapscope byte-identity gate =="
# Heap telemetry is a pure observer: -heap must leave stdout and every
# run-record field except the flat "heap" summary block untouched, and
# the tmheap/series/v1 artifact must be byte-identical across pool
# widths. strip_heap removes that block (it is the record's last field,
# so the preceding line's trailing comma is normalized away on both
# sides) and zeroes jobs provenance, the same normalization the
# parallel-determinism gate applies.
strip_heap() {
    sed -e 's/"jobs": *[0-9]*/"jobs": 0/' \
        -e '/^  "heap": {/,/^  }[,]\{0,1\}$/d' \
        -e 's/,$//' "$1"
}
go run ./cmd/tmrepro -run fig1 -jobs 1 -heap "$tmpdir/h1.json" -out "$tmpdir/hout1" >"$tmpdir/hj1.txt"
go run ./cmd/tmrepro -run fig1 -jobs 8 -heap "$tmpdir/h8.json" -out "$tmpdir/hout8" >"$tmpdir/hj8.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/hj1.txt" || {
    echo "tmrepro stdout differs with -heap" >&2
    exit 1
}
cmp "$tmpdir/h1.json" "$tmpdir/h8.json" || {
    echo "heap series artifacts differ between -jobs 1 and -jobs 8" >&2
    exit 1
}
strip_heap "$tmpdir/j1/BENCH_fig1.json" >"$tmpdir/hbase.norm"
strip_heap "$tmpdir/hout1/BENCH_fig1.json" >"$tmpdir/hj1.norm"
cmp "$tmpdir/hbase.norm" "$tmpdir/hj1.norm" || {
    echo "run records differ with -heap beyond the heap summary block" >&2
    exit 1
}
grep -q '"heap": {' "$tmpdir/hout1/BENCH_fig1.json" || {
    echo "-heap run record carries no heap summary" >&2
    exit 1
}

echo "== heapscope toolchain gate =="
# The sanitizer's shadow map and the heap watcher share the Space
# fan-out, so they must compose; tmheap must read the artifact back,
# diff two allocators' series, and tmlayout -heap-geometry must emit
# static geometry in the same schema.
go run ./cmd/tmrepro -run fig1 -jobs 8 -sanitize -heap "$tmpdir/hsan.json" >"$tmpdir/hsan.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/hsan.txt" || {
    echo "tmrepro stdout differs with -sanitize -heap" >&2
    exit 1
}
cmp "$tmpdir/h1.json" "$tmpdir/hsan.json" || {
    echo "heap series artifact differs under -sanitize" >&2
    exit 1
}
go run ./cmd/tmheap "$tmpdir/h1.json" >"$tmpdir/hsum.txt"
grep -q 'heap telemetry' "$tmpdir/hsum.txt" || {
    echo "tmheap summary carries no telemetry header" >&2
    exit 1
}
go run ./cmd/tmheap diff "$tmpdir/h1.json" >"$tmpdir/hdiff.txt"
grep -q 'blowup' "$tmpdir/hdiff.txt" || {
    echo "tmheap diff produced no blowup row" >&2
    exit 1
}
go run ./cmd/tmlayout -heap-geometry >"$tmpdir/geo.json"
grep -q '"schema": "tmheap/series/v1"' "$tmpdir/geo.json" || {
    echo "tmlayout -heap-geometry emitted the wrong schema" >&2
    exit 1
}
go run ./cmd/tmheap "$tmpdir/geo.json" >/dev/null || {
    echo "tmheap failed to read the -heap-geometry artifact" >&2
    exit 1
}

echo "== benchmarks (advisory) =="
# Proves the bench suite still runs end to end; the numbers are
# advisory and never gate. The committed BENCH_PR9.json trajectory is
# regenerated manually with scripts/bench.sh.
BENCHTIME=1x scripts/bench.sh "$tmpdir/bench.json" >/dev/null 2>&1 ||
    echo "WARNING: scripts/bench.sh failed (advisory, not gating)" >&2

echo "== sanitizer detection gate =="
# A seeded use-after-free must fail loudly under -sanitize and pass
# silently without it — the contrast that proves the checker is both
# armed and byte-transparent.
if go run ./cmd/tmintset -kind linkedlist -alloc tcmalloc -threads 2 \
    -initial 64 -ops 50 -seed-uaf -sanitize >"$tmpdir/uaf.txt" 2>&1; then
    echo "seeded use-after-free passed under -sanitize" >&2
    exit 1
fi
grep -q 'use-after-free' "$tmpdir/uaf.txt" || {
    echo "sanitized seed-uaf run failed without a use-after-free diagnostic" >&2
    exit 1
}
go run ./cmd/tmintset -kind linkedlist -alloc tcmalloc -threads 2 \
    -initial 64 -ops 50 -seed-uaf >/dev/null || {
    echo "seeded use-after-free failed without -sanitize (should pass silently)" >&2
    exit 1
}

echo "== race-checker byte-identity gate =="
# The happens-before checker is a pure observer: -race-sim must leave
# stdout and every run-record field except the flat "race" summary
# block untouched, at every pool width. strip_race mirrors strip_heap:
# the race block is the record's last field, so the preceding line's
# trailing comma normalizes away on both sides.
strip_race() {
    sed -e 's/"jobs": *[0-9]*/"jobs": 0/' \
        -e '/^  "race": {/,/^  }[,]\{0,1\}$/d' \
        -e 's/,$//' "$1"
}
go run ./cmd/tmrepro -run fig1 -jobs 1 -race-sim -out "$tmpdir/race1" >"$tmpdir/racej1.txt"
go run ./cmd/tmrepro -run fig1 -jobs 8 -race-sim -out "$tmpdir/race8" >"$tmpdir/racej8.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/racej1.txt" || {
    echo "tmrepro stdout differs with -race-sim" >&2
    exit 1
}
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/race1/BENCH_fig1.json" >"$tmpdir/race1.norm"
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/race8/BENCH_fig1.json" >"$tmpdir/race8.norm"
cmp "$tmpdir/race1.norm" "$tmpdir/race8.norm" || {
    echo "-race-sim run records differ between -jobs 1 and -jobs 8 (race verdict nondeterministic)" >&2
    exit 1
}
strip_race "$tmpdir/j1/BENCH_fig1.json" >"$tmpdir/racebase.norm"
strip_race "$tmpdir/race1/BENCH_fig1.json" >"$tmpdir/race1.stripped"
cmp "$tmpdir/racebase.norm" "$tmpdir/race1.stripped" || {
    echo "run records differ with -race-sim beyond the race summary block" >&2
    exit 1
}
grep -q '"race": {' "$tmpdir/race1/BENCH_fig1.json" || {
    echo "-race-sim run record carries no race summary" >&2
    exit 1
}
grep -q '"findings": 0' "$tmpdir/race1/BENCH_fig1.json" || {
    echo "clean -race-sim run reported findings" >&2
    exit 1
}

echo "== race-checker detection gate =="
# A seeded allocator-metadata race must fail loudly under -race-sim and
# pass silently without it — the contrast that proves the checker is
# both armed and byte-transparent.
if go run ./cmd/tmintset -kind linkedlist -alloc glibc -threads 2 \
    -initial 64 -ops 50 -seed-race -race-sim >"$tmpdir/race.txt" 2>&1; then
    echo "seeded metadata race passed under -race-sim" >&2
    exit 1
fi
grep -q 'metadata' "$tmpdir/race.txt" || {
    echo "checked seed-race run failed without a metadata-race finding" >&2
    exit 1
}
go run ./cmd/tmintset -kind linkedlist -alloc glibc -threads 2 \
    -initial 64 -ops 50 -seed-race >/dev/null || {
    echo "seeded metadata race failed without -race-sim (should pass silently)" >&2
    exit 1
}

echo "== conflict-observatory byte-identity gate =="
# The abort-forensics observatory is a pure observer: -conflict must
# leave stdout and every run-record field except the flat "conflict"
# summary block untouched, at every pool width. The conflict block is
# the record's last field, so the preceding line's trailing comma
# normalizes away on both sides.
strip_conflict() {
    sed -e 's/"jobs": *[0-9]*/"jobs": 0/' \
        -e '/^  "conflict": {/,/^  }[,]\{0,1\}$/d' \
        -e 's/,$//' "$1"
}
go run ./cmd/tmrepro -run fig1 -jobs 1 -conflict -out "$tmpdir/conf1" >"$tmpdir/confj1.txt"
go run ./cmd/tmrepro -run fig1 -jobs 8 -conflict -out "$tmpdir/conf8" >"$tmpdir/confj8.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/confj1.txt" || {
    echo "tmrepro stdout differs with -conflict" >&2
    exit 1
}
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/conf1/BENCH_fig1.json" >"$tmpdir/conf1.norm"
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/conf8/BENCH_fig1.json" >"$tmpdir/conf8.norm"
cmp "$tmpdir/conf1.norm" "$tmpdir/conf8.norm" || {
    echo "-conflict run records differ between -jobs 1 and -jobs 8 (forensics nondeterministic)" >&2
    exit 1
}
strip_conflict "$tmpdir/j1/BENCH_fig1.json" >"$tmpdir/confbase.norm"
strip_conflict "$tmpdir/conf1/BENCH_fig1.json" >"$tmpdir/conf1.stripped"
cmp "$tmpdir/confbase.norm" "$tmpdir/conf1.stripped" || {
    echo "run records differ with -conflict beyond the conflict summary block" >&2
    exit 1
}
grep -q '"conflict": {' "$tmpdir/conf1/BENCH_fig1.json" || {
    echo "-conflict run record carries no conflict summary" >&2
    exit 1
}
grep -q '"observed": true' "$tmpdir/conf1/BENCH_fig1.json" || {
    echo "-conflict run record not marked observed" >&2
    exit 1
}

echo "== conflict-observatory detection gate =="
# A choreographed ORT stripe-aliasing pair must fail loudly under
# -conflict (classified as stripe aliasing) and pass silently without
# it — the contrast that proves the observatory is both armed and
# byte-transparent.
if go run ./cmd/tmintset -kind linkedlist -alloc glibc -threads 2 \
    -initial 64 -ops 50 -seed-alias -conflict >"$tmpdir/alias.txt" 2>&1; then
    echo "seeded stripe aliasing passed under -conflict" >&2
    exit 1
fi
grep -q 'stripe' "$tmpdir/alias.txt" || {
    echo "observed seed-alias run failed without a stripe-aliasing diagnosis" >&2
    exit 1
}
go run ./cmd/tmintset -kind linkedlist -alloc glibc -threads 2 \
    -initial 64 -ops 50 -seed-alias >/dev/null || {
    echo "seeded stripe aliasing failed without -conflict (should pass silently)" >&2
    exit 1
}

echo "== durability crash-matrix gate =="
# The full crash→recover→verify matrix (4 allocators × 3 commit-phase
# crash points) must come back with every recovery verdict ok — tmcrash
# exits nonzero otherwise. Crash cells never cache, so the verdict is
# re-earned on every run.
go run ./cmd/tmcrash -jobs 1 >"$tmpdir/crash1.txt" || {
    echo "tmcrash matrix failed its recovery gate" >&2
    exit 1
}
grep -q 'tears worst' "$tmpdir/crash1.txt" || {
    echo "tmcrash produced no tear ranking" >&2
    exit 1
}

echo "== recovery determinism gate =="
# Crash points derive from the serialized virtual clock and recovery
# runs on a post-crash solo thread, so a recovery re-run must be
# byte-identical at any pool width.
go run ./cmd/tmcrash -jobs 4 >"$tmpdir/crash4.txt"
go run ./cmd/tmcrash -jobs 8 >"$tmpdir/crash8.txt"
cmp "$tmpdir/crash1.txt" "$tmpdir/crash4.txt" || {
    echo "tmcrash output differs between -jobs 1 and -jobs 4" >&2
    exit 1
}
cmp "$tmpdir/crash1.txt" "$tmpdir/crash8.txt" || {
    echo "tmcrash output differs between -jobs 1 and -jobs 8" >&2
    exit 1
}

echo "== recovery sanitize-composition gate =="
# With -sanitize the recovery sweep additionally cross-checks the
# shadow map against journaled truth (the ShadowBad invariant), and the
# recovered heap must come back shadow-clean; being pure metadata, the
# sanitizer must not move a single output byte either.
go run ./cmd/tmcrash -jobs 8 -sanitize >"$tmpdir/crashsan.txt" || {
    echo "tmcrash matrix failed under -sanitize (recovered heap not shadow-clean)" >&2
    exit 1
}
cmp "$tmpdir/crash1.txt" "$tmpdir/crashsan.txt" || {
    echo "tmcrash output differs with -sanitize" >&2
    exit 1
}

echo "CI OK"
