#!/bin/sh
# ci.sh — the repository's tier-1 gate, runnable locally or in CI.
#
#   scripts/ci.sh
#
# Steps: formatting, vet, build, the full test suite, and a -race pass
# over the packages whose tests don't depend on the virtual-time
# engine's one-goroutine-at-a-time determinism (the engine serializes
# execution by construction, so -race on those packages only slows the
# suite down without adding coverage).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (virtual-time-independent packages) =="
go test -race ./internal/obs ./internal/mem ./internal/sim ./internal/cachesim

echo "== fault-injection smoke =="
# Every STAMP app must survive an injected-OOM plan with the graceful-
# degradation ladder engaged, still emitting a valid run record, and two
# runs of the same seeded fault plan must be byte-identical.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/tmstamp -app yada -alloc tbb -threads 2 \
    -cm backoff -retry-cap 64 -fault 'oom@10x2,oom%1,lat%2:200' -deadline 2000000000 \
    -seed 7 -json "$tmpdir/fault1.json" >/dev/null
go run ./cmd/tmstamp -app yada -alloc tbb -threads 2 \
    -cm backoff -retry-cap 64 -fault 'oom@10x2,oom%1,lat%2:200' -deadline 2000000000 \
    -seed 7 -json "$tmpdir/fault2.json" >/dev/null
cmp "$tmpdir/fault1.json" "$tmpdir/fault2.json" || {
    echo "fault-injection run records differ for the same seed" >&2
    exit 1
}
grep -q '"status"' "$tmpdir/fault1.json" || {
    echo "fault-injection run record carries no status" >&2
    exit 1
}

echo "CI OK"
