#!/bin/sh
# ci.sh — the repository's tier-1 gate, runnable locally or in CI.
#
#   scripts/ci.sh
#
# Steps: formatting, vet, build, the full test suite, and a -race pass
# over the packages whose tests don't depend on the virtual-time
# engine's one-goroutine-at-a-time determinism (the engine serializes
# execution by construction, so -race on those packages only slows the
# suite down without adding coverage).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (virtual-time-independent packages) =="
go test -race ./internal/obs ./internal/mem ./internal/sim ./internal/cachesim

echo "CI OK"
