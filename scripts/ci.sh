#!/bin/sh
# ci.sh — the repository's tier-1 gate, runnable locally or in CI.
#
#   scripts/ci.sh
#
# Steps: formatting, vet, build, the full test suite, and a -race pass
# over the packages whose tests don't depend on the virtual-time
# engine's one-goroutine-at-a-time determinism (the engine serializes
# execution by construction, so -race on those packages only slows the
# suite down without adding coverage).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (virtual-time-independent packages) =="
go test -race ./internal/obs ./internal/mem ./internal/sim ./internal/cachesim

echo "== go test -race (sweep scheduler) =="
# The scheduler is the one component that genuinely runs host
# goroutines concurrently; its deque/steal/cache paths get a dedicated
# race pass.
go test -race ./internal/sweep

echo "== fault-injection smoke =="
# Every STAMP app must survive an injected-OOM plan with the graceful-
# degradation ladder engaged, still emitting a valid run record, and two
# runs of the same seeded fault plan must be byte-identical.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/tmstamp -app yada -alloc tbb -threads 2 \
    -cm backoff -retry-cap 64 -fault 'oom@10x2,oom%1,lat%2:200' -deadline 2000000000 \
    -seed 7 -json "$tmpdir/fault1.json" >/dev/null
go run ./cmd/tmstamp -app yada -alloc tbb -threads 2 \
    -cm backoff -retry-cap 64 -fault 'oom@10x2,oom%1,lat%2:200' -deadline 2000000000 \
    -seed 7 -json "$tmpdir/fault2.json" >/dev/null
cmp "$tmpdir/fault1.json" "$tmpdir/fault2.json" || {
    echo "fault-injection run records differ for the same seed" >&2
    exit 1
}
grep -q '"status"' "$tmpdir/fault1.json" || {
    echo "fault-injection run record carries no status" >&2
    exit 1
}

echo "== parallel-determinism gate =="
# A wide work-stealing pool must produce byte-identical results to a
# serial run. Only the recorded pool width ("jobs", execution
# provenance like wall-clock time) may differ between the two records.
go run ./cmd/tmrepro -run fig1 -jobs 1 -out "$tmpdir/j1" >"$tmpdir/j1.txt"
go run ./cmd/tmrepro -run fig1 -jobs 8 -out "$tmpdir/j8" >"$tmpdir/j8.txt"
cmp "$tmpdir/j1.txt" "$tmpdir/j8.txt" || {
    echo "tmrepro stdout differs between -jobs 1 and -jobs 8" >&2
    exit 1
}
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/j1/BENCH_fig1.json" >"$tmpdir/j1.norm"
sed 's/"jobs": *[0-9]*/"jobs": 0/' "$tmpdir/j8/BENCH_fig1.json" >"$tmpdir/j8.norm"
cmp "$tmpdir/j1.norm" "$tmpdir/j8.norm" || {
    echo "run records differ between -jobs 1 and -jobs 8" >&2
    exit 1
}

echo "== cache round-trip gate =="
# A second invocation against a warm cache must execute nothing and
# reproduce the same stdout.
go run ./cmd/tmrepro -run tab4 -cache "$tmpdir/cellcache" >"$tmpdir/c1.txt" 2>/dev/null
go run ./cmd/tmrepro -run tab4 -cache "$tmpdir/cellcache" >"$tmpdir/c2.txt" 2>"$tmpdir/c2.err"
cmp "$tmpdir/c1.txt" "$tmpdir/c2.txt" || {
    echo "cached run differs from executed run" >&2
    exit 1
}
grep -q ' 0 executed' "$tmpdir/c2.err" || {
    echo "second -cache invocation executed cells instead of hitting the cache" >&2
    exit 1
}

echo "CI OK"
