#!/bin/sh
# bench.sh — seeded benchmark trajectory over the observability
# stack: obs, the sweep scheduler, prof, the heapscope telemetry
# collector (plain-vs-watched runs measure snapshot overhead), the
# pmem durability layer (BenchmarkTxVolatile vs BenchmarkTxDurable is
# the flush/fence-on-vs-off overhead pair; BenchmarkCrashRecover a full
# crash→recover→verify cycle), the race checker
# (BenchmarkIntsetPlain vs BenchmarkIntsetRaceSim is the
# happens-before-checker-on-vs-off overhead pair), and — since PR 10 —
# the abort-forensics observatory (BenchmarkIntsetPlain vs
# BenchmarkIntsetConflict is the forensics-on-vs-off overhead pair).
#
#   scripts/bench.sh [out.json]        default out: BENCH_PR10.json
#   BENCHTIME=10x scripts/bench.sh     shorter smoke run (CI advisory)
#
# Runs `go test -bench . -benchmem` and renders the result as
# machine-readable JSON: one entry per benchmark (name, ns/op,
# allocs/op) plus host provenance, an alloc_regression block pairing
# each flagship workload benchmark's current allocs/op against the
# committed BENCH_PR8.json trajectory point, and a race_overhead block
# pairing each plain benchmark's ns/op against its -race-sim twin.
# ns/op numbers are advisory — they vary across hosts and are never a
# CI gate — but allocs/op is deterministic, and scripts/ci.sh gates
# the flagship budget separately via TestWorkloadAllocBudget.
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_PR10.json}
benchtime=${BENCHTIME:-}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# shellcheck disable=SC2086  # $benchtime is deliberately word-split
go test -bench . -benchmem ${benchtime:+-benchtime "$benchtime"} \
    ./internal/obs ./internal/sweep ./internal/prof ./internal/heapscope ./internal/pmem \
    ./internal/intset >"$raw"

cpu=$(awk -F': ' '/^cpu:/ { print $2; exit }' "$raw")
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)

{
    printf '{\n'
    printf '  "schema": "tmrepro-bench-suite/v1",\n'
    printf '  "host": {\n'
    printf '    "go": "%s",\n' "$(go env GOVERSION)"
    printf '    "os": "%s",\n' "$(go env GOOS)"
    printf '    "arch": "%s",\n' "$(go env GOARCH)"
    printf '    "cpu": "%s",\n' "$cpu"
    printf '    "ncpu": %s\n' "$ncpu"
    printf '  },\n'
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            ns = $3
            allocs = "0"
            for (i = 4; i <= NF; i++)
                if ($i == "allocs/op") allocs = $(i - 1)
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs
        }
        END { if (n) printf "\n" }
    ' "$raw"
    printf '  ],\n'
    # Before/after allocs-per-op pairs for the flagship workload
    # benchmarks: "before" comes from the committed PR 8 trajectory
    # (the state this PR started from), "after" from the run above.
    # Missing baselines degrade to -1, not to a failure.
    printf '  "alloc_regression": [\n'
    first=1
    for name in BenchmarkWorkloadObsDisabled BenchmarkWorkloadObsEnabled; do
        after=$(awk -v n="$name" '
            $1 ~ "^"n"(-[0-9]+)?$" {
                for (i = 4; i <= NF; i++)
                    if ($i == "allocs/op") print $(i - 1)
            }' "$raw" | head -n1)
        before=$(grep -o "{\"name\": \"$name\"[^}]*}" BENCH_PR8.json 2>/dev/null |
            sed -n 's/.*"allocs_per_op": \([0-9]*\).*/\1/p' | head -n1)
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '    {"name": "%s", "before_allocs_per_op": %s, "after_allocs_per_op": %s}' \
            "$name" "${before:--1}" "${after:--1}"
    done
    printf '\n  ],\n'
    # Plain-vs-race-sim ns/op pairs: identical workloads except for the
    # attached happens-before checker; the ratio is the checker's
    # overhead on this host (advisory, never gated).
    printf '  "race_overhead": [\n'
    first=1
    for name in BenchmarkIntset; do
        plain=$(awk -v n="${name}Plain" '
            $1 ~ "^"n"(-[0-9]+)?$" { print $3 }' "$raw" | head -n1)
        race=$(awk -v n="${name}RaceSim" '
            $1 ~ "^"n"(-[0-9]+)?$" { print $3 }' "$raw" | head -n1)
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '    {"name": "%s", "plain_ns_per_op": %s, "race_sim_ns_per_op": %s}' \
            "$name" "${plain:--1}" "${race:--1}"
    done
    printf '\n  ],\n'
    # Plain-vs-conflict ns/op pairs: identical workloads except for the
    # attached abort-forensics observatory; the ratio is the
    # observatory's overhead on this host (advisory, never gated).
    printf '  "conflict_overhead": [\n'
    first=1
    for name in BenchmarkIntset; do
        plain=$(awk -v n="${name}Plain" '
            $1 ~ "^"n"(-[0-9]+)?$" { print $3 }' "$raw" | head -n1)
        conflict=$(awk -v n="${name}Conflict" '
            $1 ~ "^"n"(-[0-9]+)?$" { print $3 }' "$raw" | head -n1)
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '    {"name": "%s", "plain_ns_per_op": %s, "conflict_ns_per_op": %s}' \
            "$name" "${plain:--1}" "${conflict:--1}"
    done
    printf '\n  ]\n'
    printf '}\n'
} >"$out"

count=$(grep -c '"name"' "$out" || true)
echo "wrote $out ($count benchmarks)"
